//! A polynomial-time *heuristic* fault oracle — probing the open problem.
//!
//! The paper closes with: the naive FT-greedy is exponential in `f`; can
//! the dependence be improved? This oracle explores the cheap end of that
//! question. Instead of branching over all candidates of the current
//! shortest path, it commits greedily to one candidate per step (several
//! fixed pick rules, tried in order), giving `O(f · |rules|)` shortest
//! path queries per edge test.
//!
//! The asymmetry callers must understand:
//!
//! * any returned fault set is a **genuine witness** — the final
//!   shortest-path query proved `dist > bound`, so FT-greedy keeps the
//!   edge *correctly*;
//! * a `None` answer may be **wrong** (a blocking set might exist that
//!   greedy commitment missed), so FT-greedy built on this oracle can
//!   drop edges it needed — its output may fail fault audits.
//!
//! Experiment E11 measures exactly this trade: construction work vs audit
//! violations vs output size, against the exact branching oracle.

use crate::{FaultModel, FaultOracle, FaultSet, OracleQuery, OracleStats};
use spanner_graph::{DijkstraEngine, EdgeId, FaultMask, Graph, NodeId, ShortestPath};

/// How the heuristic commits to a candidate on the current shortest path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PickRule {
    /// The middle element of the path (classic "cut it in half").
    Middle,
    /// The first interior element.
    First,
    /// The last interior element.
    Last,
    /// The element of maximum degree in the graph (hub-first).
    MaxDegree,
}

impl PickRule {
    /// All rules in the order the oracle tries them.
    pub fn all() -> [PickRule; 4] {
        [
            PickRule::Middle,
            PickRule::MaxDegree,
            PickRule::First,
            PickRule::Last,
        ]
    }
}

/// The greedy-commitment heuristic oracle. **Not exact** — see the module
/// docs for the soundness asymmetry.
///
/// # Examples
///
/// ```
/// use spanner_faults::{FaultModel, FaultOracle, GreedyHeuristicOracle, OracleQuery};
/// use spanner_graph::{Dist, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut oracle = GreedyHeuristicOracle::new();
/// let found = oracle.find_blocking_faults(&g, OracleQuery {
///     u: NodeId::new(0),
///     v: NodeId::new(3),
///     bound: Dist::finite(2),
///     budget: 2,
///     model: FaultModel::Vertex,
/// });
/// // On this instance the heuristic finds the (unique) cut.
/// assert!(found.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct GreedyHeuristicOracle {
    engine: DijkstraEngine,
    stats: OracleStats,
}

impl GreedyHeuristicOracle {
    /// Creates the heuristic oracle.
    pub fn new() -> Self {
        GreedyHeuristicOracle::default()
    }

    fn pick(
        graph: &Graph,
        path: &ShortestPath,
        rule: PickRule,
        model: FaultModel,
    ) -> Option<usize> {
        match model {
            FaultModel::Vertex => {
                let interior = path.interior_nodes();
                if interior.is_empty() {
                    return None;
                }
                let idx = match rule {
                    PickRule::Middle => interior.len() / 2,
                    PickRule::First => 0,
                    PickRule::Last => interior.len() - 1,
                    PickRule::MaxDegree => {
                        let mut best = 0;
                        for (i, n) in interior.iter().enumerate() {
                            if graph.degree(*n) > graph.degree(interior[best]) {
                                best = i;
                            }
                        }
                        best
                    }
                };
                Some(interior[idx].index())
            }
            FaultModel::Edge => {
                let edges = &path.edges;
                if edges.is_empty() {
                    return None;
                }
                let idx = match rule {
                    PickRule::Middle => edges.len() / 2,
                    PickRule::First => 0,
                    PickRule::Last => edges.len() - 1,
                    PickRule::MaxDegree => {
                        let degree_of = |e: EdgeId| {
                            let (a, b) = graph.endpoints(e);
                            graph.degree(a) + graph.degree(b)
                        };
                        let mut best = 0;
                        for (i, e) in edges.iter().enumerate() {
                            if degree_of(*e) > degree_of(edges[best]) {
                                best = i;
                            }
                        }
                        best
                    }
                };
                Some(edges[idx].index())
            }
        }
    }

    fn try_rule(&mut self, graph: &Graph, q: &OracleQuery, rule: PickRule) -> Option<Vec<usize>> {
        let mut mask = FaultMask::for_graph(graph);
        let mut chosen = Vec::new();
        loop {
            self.stats.nodes_explored += 1;
            self.stats.shortest_path_queries += 1;
            let Some(path) = self
                .engine
                .shortest_path_bounded(graph, q.u, q.v, q.bound, &mask)
            else {
                return Some(chosen); // verified witness: dist > bound
            };
            if chosen.len() >= q.budget {
                return None;
            }
            let cand = Self::pick(graph, &path, rule, q.model)?;
            match q.model {
                FaultModel::Vertex => {
                    mask.fault_vertex(NodeId::new(cand));
                }
                FaultModel::Edge => {
                    mask.fault_edge(EdgeId::new(cand));
                }
            }
            chosen.push(cand);
        }
    }
}

impl FaultOracle for GreedyHeuristicOracle {
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet> {
        for rule in PickRule::all() {
            if let Some(chosen) = self.try_rule(graph, &query, rule) {
                return Some(match query.model {
                    FaultModel::Vertex => FaultSet::vertices(chosen.into_iter().map(NodeId::new)),
                    FaultModel::Edge => FaultSet::edges(chosen.into_iter().map(EdgeId::new)),
                });
            }
        }
        None
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExhaustiveOracle;
    use spanner_graph::Dist;

    fn q(u: usize, v: usize, bound: u64, budget: usize, model: FaultModel) -> OracleQuery {
        OracleQuery {
            u: NodeId::new(u),
            v: NodeId::new(v),
            bound: Dist::finite(bound),
            budget,
            model,
        }
    }

    #[test]
    fn witnesses_are_always_genuine() {
        use spanner_graph::dijkstra;
        // A handful of small graphs: whenever the heuristic claims a
        // witness, it must really block.
        let graphs = [
            Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap(),
            Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)]).unwrap(),
            Graph::from_edges(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4), (4, 5)]).unwrap(),
        ];
        for g in &graphs {
            for budget in 0..3 {
                for bound in 1..5 {
                    for model in [FaultModel::Vertex, FaultModel::Edge] {
                        let query = q(0, g.node_count() - 1, bound, budget, model);
                        let mut o = GreedyHeuristicOracle::new();
                        if let Some(f) = o.find_blocking_faults(g, query) {
                            let mask = f.to_mask(g.node_count(), g.edge_count());
                            let d = dijkstra::dist(g, query.u, query.v, &mask);
                            assert!(d > query.bound, "bogus witness {f} for bound {bound}");
                            assert!(f.len() <= budget);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn heuristic_never_finds_more_than_exact() {
        // If the exact oracle says "no blocking set", the heuristic must
        // also say None (its witnesses are verified, so a Some here would
        // contradict exactness).
        let g = Graph::from_edges(5, [(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)]).unwrap();
        for budget in 0..3 {
            let query = q(0, 4, 2, budget, FaultModel::Vertex);
            let mut exact = ExhaustiveOracle::new();
            let mut heuristic = GreedyHeuristicOracle::new();
            let e = exact.find_blocking_faults(&g, query);
            let h = heuristic.find_blocking_faults(&g, query);
            if e.is_none() {
                assert!(h.is_none(), "heuristic fabricated a witness");
            }
        }
    }

    #[test]
    fn finds_easy_cuts() {
        let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let mut o = GreedyHeuristicOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex))
            .is_some());
        assert!(o
            .find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Edge))
            .is_some());
    }

    #[test]
    fn direct_edge_unblockable_in_vertex_model() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut o = GreedyHeuristicOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 1, 1, 9, FaultModel::Vertex))
            .is_none());
    }

    #[test]
    fn polynomial_query_count() {
        // Whatever happens, the heuristic issues at most
        // |rules| * (budget + 1) shortest-path queries per call.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)]).unwrap();
        let budget = 4;
        let mut o = GreedyHeuristicOracle::new();
        let _ = o.find_blocking_faults(&g, q(0, 5, 3, budget, FaultModel::Vertex));
        assert!(
            o.stats().shortest_path_queries <= (PickRule::all().len() * (budget + 2)) as u64,
            "queries {}",
            o.stats().shortest_path_queries
        );
    }

    #[test]
    fn zero_budget_matches_plain_distance_check() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut o = GreedyHeuristicOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 2, 1, 0, FaultModel::Vertex))
            .is_some());
        assert!(o
            .find_blocking_faults(&g, q(0, 2, 2, 0, FaultModel::Vertex))
            .is_none());
    }
}
