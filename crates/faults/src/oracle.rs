//! The fault-oracle interface: the decision procedure inside FT-greedy.
//!
//! The FT greedy algorithm (Algorithm 1 of the paper) keeps an edge
//! `(u, v)` exactly when some fault set `F` of size at most `f` pushes
//! `dist_{H∖F}(u, v)` above `k·w(u, v)`. Deciding that is a *length-bounded
//! cut* problem — NP-hard in general and exponential in `f` in the naive
//! implementation, which the paper explicitly flags as an open problem.
//! This crate ships several oracles with identical contracts so they can be
//! cross-validated and benchmarked against each other.

use crate::{FaultModel, FaultSet};
use spanner_graph::{Dist, Graph, NodeId};
use std::fmt;

/// A query to a [`FaultOracle`].
#[derive(Clone, Copy, Debug)]
pub struct OracleQuery {
    /// One endpoint.
    pub u: NodeId,
    /// Other endpoint.
    pub v: NodeId,
    /// The distance bound (`k·w(u, v)` in greedy).
    pub bound: Dist,
    /// Maximum number of faults (`f`).
    pub budget: usize,
    /// Vertex or edge faults.
    pub model: FaultModel,
}

/// Counters describing how much work an oracle did (machine-independent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of search-tree nodes (or candidate subsets) explored.
    pub nodes_explored: u64,
    /// Number of shortest-path queries issued.
    pub shortest_path_queries: u64,
    /// Number of branches pruned by the disjoint-path packing bound.
    pub packing_prunes: u64,
    /// Number of branches skipped by fault-set memoization.
    pub memo_hits: u64,
    /// Number of queries answered directly by a global min-cut witness.
    pub cut_shortcuts: u64,
    /// Number of times reusable scratch (fault mask words, memo table,
    /// candidate arena) had to be allocated or grown. After the first
    /// query on a graph of a given size this stays flat — the regression
    /// tests assert exactly that.
    pub scratch_rebuilds: u64,
    /// Number of times a persistent worker pool was spawned. A pooled
    /// oracle reused across constructions (e.g. every shard of a
    /// partitioned build) spawns exactly once; the frontier bench
    /// asserts that.
    pub pool_spawns: u64,
}

impl OracleStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: OracleStats) {
        self.nodes_explored += other.nodes_explored;
        self.shortest_path_queries += other.shortest_path_queries;
        self.packing_prunes += other.packing_prunes;
        self.memo_hits += other.memo_hits;
        self.cut_shortcuts += other.cut_shortcuts;
        self.scratch_rebuilds += other.scratch_rebuilds;
        self.pool_spawns += other.pool_spawns;
    }
}

impl fmt::Display for OracleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} sp-queries={} packing-prunes={} memo-hits={} cut-shortcuts={} scratch-rebuilds={} pool-spawns={}",
            self.nodes_explored,
            self.shortest_path_queries,
            self.packing_prunes,
            self.memo_hits,
            self.cut_shortcuts,
            self.scratch_rebuilds,
            self.pool_spawns
        )
    }
}

/// A decision procedure for the FT-greedy edge test.
///
/// Implementations must be **exact**: return `Some(F)` with `|F| ≤ budget`,
/// `F` disjoint from `{u, v}` (vertex model), and
/// `dist_{graph∖F}(u, v) > bound` — or `None` only when no such `F` exists.
pub trait FaultOracle {
    /// Searches for a blocking fault set for `query` against `graph`.
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet>;

    /// Work counters accumulated so far.
    fn stats(&self) -> OracleStats;

    /// Resets the work counters.
    fn reset_stats(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_adds_fields() {
        let mut a = OracleStats {
            nodes_explored: 1,
            shortest_path_queries: 2,
            packing_prunes: 3,
            memo_hits: 4,
            cut_shortcuts: 5,
            scratch_rebuilds: 6,
            pool_spawns: 7,
        };
        a.absorb(OracleStats {
            nodes_explored: 10,
            shortest_path_queries: 20,
            packing_prunes: 30,
            memo_hits: 40,
            cut_shortcuts: 50,
            scratch_rebuilds: 60,
            pool_spawns: 70,
        });
        assert_eq!(a.nodes_explored, 11);
        assert_eq!(a.shortest_path_queries, 22);
        assert_eq!(a.packing_prunes, 33);
        assert_eq!(a.memo_hits, 44);
        assert_eq!(a.cut_shortcuts, 55);
        assert_eq!(a.scratch_rebuilds, 66);
        assert_eq!(a.pool_spawns, 77);
    }

    #[test]
    fn stats_display_nonempty() {
        let s = OracleStats::default();
        assert!(s.to_string().contains("nodes=0"));
    }
}
