//! The bounded-search-tree fault oracle.
//!
//! The key observation: any fault set `F` that pushes `dist(u, v)` above
//! the bound must *hit the current shortest path* — in the vertex model one
//! of its (at most `⌈bound/min-weight⌉ − 1`) interior vertices, in the edge
//! model one of its edges. Branching over those candidates and recursing
//! with budget `f − 1` explores `O(k^f)` search nodes instead of the
//! `O(n^f)` of brute force, while remaining exact.
//!
//! Two accelerations, both optional (for the ablation experiments) and both
//! sound:
//!
//! * **Packing pruning** ([`crate::packing`]): if more than
//!   `remaining-budget` pairwise disjoint short paths survive, no extension
//!   of the current fault set can work — stop.
//! * **Memoization**: the same fault *set* reached by different orders
//!   explores the same subtree; a hash set of visited sets collapses those
//!   permutations.
//!
//! This is still exponential in `f` — the paper explicitly leaves a faster
//! FT-greedy as an open problem, and experiment E9 measures exactly this
//! growth.

use crate::packing::disjoint_path_packing;
use crate::{FaultModel, FaultOracle, FaultSet, OracleQuery, OracleStats};
use spanner_graph::{DijkstraEngine, EdgeId, FaultMask, Graph, NodeId};
use std::collections::HashSet;

/// Feature toggles for [`BranchingOracle`] (used by the ablation benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchingConfig {
    /// Enable the disjoint-path packing prune.
    pub use_packing: bool,
    /// Enable fault-set memoization.
    pub use_memo: bool,
    /// Enable the global min-cut shortcut: if the whole graph has an
    /// `s–t` cut (vertex or edge, per model) of size ≤ budget, that cut
    /// blocks *every* path — in particular all short ones — so it is a
    /// valid witness without any search. Sound; found via bounded
    /// max-flow before branching starts.
    pub use_cut_shortcut: bool,
}

impl Default for BranchingConfig {
    fn default() -> Self {
        BranchingConfig {
            use_packing: true,
            use_memo: true,
            use_cut_shortcut: true,
        }
    }
}

/// The branching fault oracle. See the module docs.
///
/// # Examples
///
/// ```
/// use spanner_faults::{BranchingOracle, FaultModel, FaultOracle, OracleQuery};
/// use spanner_graph::{Dist, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut oracle = BranchingOracle::new();
/// let query = OracleQuery {
///     u: NodeId::new(0),
///     v: NodeId::new(3),
///     bound: Dist::finite(2),
///     budget: 2,
///     model: FaultModel::Vertex,
/// };
/// let f = oracle.find_blocking_faults(&g, query).unwrap();
/// assert_eq!(f.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct BranchingOracle {
    engine: DijkstraEngine,
    config: BranchingConfig,
    stats: OracleStats,
}

impl BranchingOracle {
    /// Creates an oracle with both accelerations enabled.
    pub fn new() -> Self {
        BranchingOracle::default()
    }

    /// Creates an oracle with explicit feature toggles.
    pub fn with_config(config: BranchingConfig) -> Self {
        BranchingOracle {
            engine: DijkstraEngine::new(),
            config,
            stats: OracleStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> BranchingConfig {
        self.config
    }

    fn search(
        &mut self,
        graph: &Graph,
        q: &OracleQuery,
        mask: &mut FaultMask,
        current: &mut Vec<usize>,
        memo: &mut HashSet<Vec<usize>>,
    ) -> bool {
        self.stats.nodes_explored += 1;
        self.stats.shortest_path_queries += 1;
        let Some(path) = self
            .engine
            .shortest_path_bounded(graph, q.u, q.v, q.bound, mask)
        else {
            return true; // dist already exceeds the bound
        };
        let remaining = q.budget - current.len();
        if remaining == 0 {
            return false;
        }
        let candidates: Vec<usize> = match q.model {
            FaultModel::Vertex => path.interior_nodes().iter().map(|n| n.index()).collect(),
            FaultModel::Edge => path.edges.iter().map(|e| e.index()).collect(),
        };
        if candidates.is_empty() {
            // Vertex model, direct u-v edge: unblockable.
            return false;
        }
        if self.config.use_packing {
            let pack = disjoint_path_packing(
                graph,
                &mut self.engine,
                mask,
                q.u,
                q.v,
                q.bound,
                q.model,
                remaining + 1,
            );
            self.stats.shortest_path_queries += pack as u64 + 1;
            if pack > remaining {
                self.stats.packing_prunes += 1;
                return false;
            }
        }
        for c in candidates {
            self.fault(q.model, mask, c);
            current.push(c);
            let skip = if self.config.use_memo {
                let mut key = current.clone();
                key.sort_unstable();
                if memo.insert(key) {
                    false
                } else {
                    self.stats.memo_hits += 1;
                    true
                }
            } else {
                false
            };
            if !skip && self.search(graph, q, mask, current, memo) {
                return true;
            }
            current.pop();
            self.restore(q.model, mask, c);
        }
        false
    }

    fn fault(&self, model: FaultModel, mask: &mut FaultMask, c: usize) {
        match model {
            FaultModel::Vertex => {
                mask.fault_vertex(NodeId::new(c));
            }
            FaultModel::Edge => {
                mask.fault_edge(EdgeId::new(c));
            }
        }
    }

    fn restore(&self, model: FaultModel, mask: &mut FaultMask, c: usize) {
        match model {
            FaultModel::Vertex => {
                mask.restore_vertex(NodeId::new(c));
            }
            FaultModel::Edge => {
                mask.restore_edge(EdgeId::new(c));
            }
        }
    }
}

impl BranchingOracle {
    /// Like [`FaultOracle::find_blocking_faults`], but starts the search
    /// from a pre-committed partial fault set (counted against the
    /// budget). Used by the parallel oracle to fan the root branches out
    /// across workers; also handy for "what if X were already down?"
    /// analyses.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is larger than the budget or disagrees with the
    /// query's fault model.
    pub fn find_blocking_faults_with_initial(
        &mut self,
        graph: &Graph,
        query: OracleQuery,
        initial: &FaultSet,
    ) -> Option<FaultSet> {
        assert!(initial.len() <= query.budget, "initial set exceeds budget");
        assert!(
            initial.is_empty() || initial.model() == query.model,
            "initial set model mismatch"
        );
        let mut mask = FaultMask::for_graph(graph);
        initial.apply_to(&mut mask);
        let mut current: Vec<usize> = match initial {
            FaultSet::Vertices(v) => v.iter().map(|n| n.index()).collect(),
            FaultSet::Edges(e) => e.iter().map(|id| id.index()).collect(),
        };
        let mut memo: HashSet<Vec<usize>> = HashSet::new();
        if self.search(graph, &query, &mut mask, &mut current, &mut memo) {
            Some(match query.model {
                FaultModel::Vertex => FaultSet::vertices(current.into_iter().map(NodeId::new)),
                FaultModel::Edge => FaultSet::edges(current.into_iter().map(EdgeId::new)),
            })
        } else {
            None
        }
    }
}

impl FaultOracle for BranchingOracle {
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet> {
        let mut mask = FaultMask::for_graph(graph);
        if self.config.use_cut_shortcut && query.budget > 0 {
            // A global cut within budget blocks all paths, short or long.
            match query.model {
                FaultModel::Vertex => {
                    if let Some(cut) = spanner_graph::connectivity::min_vertex_cut_st(
                        graph,
                        &mask,
                        query.u,
                        query.v,
                        query.budget as u32,
                    ) {
                        self.stats.cut_shortcuts += 1;
                        return Some(FaultSet::vertices(cut));
                    }
                }
                FaultModel::Edge => {
                    if let Some(cut) = spanner_graph::connectivity::min_edge_cut_st(
                        graph,
                        &mask,
                        query.u,
                        query.v,
                        query.budget as u32,
                    ) {
                        self.stats.cut_shortcuts += 1;
                        return Some(FaultSet::edges(cut));
                    }
                }
            }
        }
        let mut current = Vec::with_capacity(query.budget);
        let mut memo: HashSet<Vec<usize>> = HashSet::new();
        if self.search(graph, &query, &mut mask, &mut current, &mut memo) {
            Some(match query.model {
                FaultModel::Vertex => FaultSet::vertices(current.into_iter().map(NodeId::new)),
                FaultModel::Edge => FaultSet::edges(current.into_iter().map(EdgeId::new)),
            })
        } else {
            None
        }
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::Dist;

    fn q(u: usize, v: usize, bound: u64, budget: usize, model: FaultModel) -> OracleQuery {
        OracleQuery {
            u: NodeId::new(u),
            v: NodeId::new(v),
            bound: Dist::finite(bound),
            budget,
            model,
        }
    }

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn finds_vertex_cut() {
        let g = diamond();
        let mut o = BranchingOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex))
            .unwrap();
        assert_eq!(f, FaultSet::vertices([NodeId::new(1), NodeId::new(2)]));
    }

    #[test]
    fn budget_too_small_fails() {
        let g = diamond();
        let mut o = BranchingOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 3, 2, 1, FaultModel::Vertex))
            .is_none());
    }

    #[test]
    fn direct_edge_unblockable_in_vertex_model() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut o = BranchingOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 1, 1, 10, FaultModel::Vertex))
            .is_none());
    }

    #[test]
    fn edge_model_blocks_direct_edge() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut o = BranchingOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 1, 1, 1, FaultModel::Edge))
            .unwrap();
        assert_eq!(f, FaultSet::edges([EdgeId::new(0)]));
    }

    #[test]
    fn already_far_needs_no_faults() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut o = BranchingOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 2, 1, 0, FaultModel::Vertex))
            .unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn all_config_variants_agree_on_diamond() {
        let g = diamond();
        for use_packing in [false, true] {
            for use_memo in [false, true] {
                for use_cut_shortcut in [false, true] {
                    let mut o = BranchingOracle::with_config(BranchingConfig {
                        use_packing,
                        use_memo,
                        use_cut_shortcut,
                    });
                    let f = o.find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex));
                    assert!(
                        f.is_some(),
                        "packing={use_packing} memo={use_memo} cut={use_cut_shortcut}"
                    );
                    let none = o.find_blocking_faults(&g, q(0, 3, 2, 1, FaultModel::Vertex));
                    assert!(
                        none.is_none(),
                        "packing={use_packing} memo={use_memo} cut={use_cut_shortcut}"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_bound_respected() {
        // 0 -5- 1, alternative 0 -1- 2 -1- 1. Stretch bound 10: alt path
        // weight 2 <= 10, needs vertex 2 faulted.
        let g = Graph::from_weighted_edges(3, [(0, 2, 1), (2, 1, 1)]).unwrap();
        let mut o = BranchingOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 1, 10, 1, FaultModel::Vertex))
            .unwrap();
        assert_eq!(f, FaultSet::vertices([NodeId::new(2)]));
    }

    #[test]
    fn returned_set_actually_blocks() {
        use spanner_graph::dijkstra;
        let g =
            Graph::from_edges(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4), (4, 5)]).unwrap();
        let mut o = BranchingOracle::new();
        let query = q(0, 5, 2, 2, FaultModel::Vertex);
        let f = o.find_blocking_faults(&g, query).unwrap();
        let mask = f.to_mask(g.node_count(), g.edge_count());
        let d = dijkstra::dist(&g, NodeId::new(0), NodeId::new(5), &mask);
        assert!(d > Dist::finite(2));
    }

    #[test]
    fn memo_reduces_exploration() {
        // A graph with many symmetric routes provokes permutation blowup.
        let mut g = Graph::new(2);
        for _ in 0..6 {
            let a = g.add_node();
            let b = g.add_node();
            g.add_edge(NodeId::new(0), a, spanner_graph::Weight::UNIT);
            g.add_edge(a, b, spanner_graph::Weight::UNIT);
            g.add_edge(b, NodeId::new(1), spanner_graph::Weight::UNIT);
        }
        let query = q(0, 1, 3, 4, FaultModel::Vertex);
        let mut with_memo = BranchingOracle::with_config(BranchingConfig {
            use_packing: false,
            use_memo: true,
            use_cut_shortcut: false,
        });
        let mut without_memo = BranchingOracle::with_config(BranchingConfig {
            use_packing: false,
            use_memo: false,
            use_cut_shortcut: false,
        });
        let a = with_memo.find_blocking_faults(&g, query);
        let b = without_memo.find_blocking_faults(&g, query);
        assert_eq!(a.is_some(), b.is_some());
        assert!(
            with_memo.stats().nodes_explored <= without_memo.stats().nodes_explored,
            "memo {} vs plain {}",
            with_memo.stats().nodes_explored,
            without_memo.stats().nodes_explored
        );
    }
}
