//! The bounded-search-tree fault oracle.
//!
//! The key observation: any fault set `F` that pushes `dist(u, v)` above
//! the bound must *hit the current shortest path* — in the vertex model one
//! of its (at most `⌈bound/min-weight⌉ − 1`) interior vertices, in the edge
//! model one of its edges. Branching over those candidates and recursing
//! with budget `f − 1` explores `O(k^f)` search nodes instead of the
//! `O(n^f)` of brute force, while remaining exact.
//!
//! Two accelerations, both optional (for the ablation experiments) and both
//! sound:
//!
//! * **Packing pruning** ([`crate::packing`]): if more than
//!   `remaining-budget` pairwise disjoint short paths survive, no extension
//!   of the current fault set can work — stop.
//! * **Memoization**: the same fault *set* reached by different orders
//!   explores the same subtree; a hash set of visited sets collapses those
//!   permutations.
//!
//! This is still exponential in `f` — the paper explicitly leaves a faster
//! FT-greedy as an open problem, and experiment E9 measures exactly this
//! growth.
//!
//! # Scratch-reuse contract
//!
//! One oracle instance is meant to serve a whole FT-greedy construction
//! (thousands of queries against a growing spanner). Everything the
//! search needs lives in a per-oracle [`SearchScratch`]:
//!
//! * the working [`FaultMask`] is cleared in place per query
//!   ([`FaultMask::reset_for`]) — growth is counted in
//!   [`OracleStats::scratch_rebuilds`] and goes flat after warm-up;
//! * branching candidates go into a segmented arena (one `Vec`, ranges
//!   per recursion level) instead of a fresh `Vec` per search node;
//! * path extraction reuses [`PathScratch`] buffers
//!   ([`DijkstraEngine::shortest_path_bounded_into`]);
//! * the memo keys are order-independent 128-bit Zobrist fingerprints of
//!   the current fault set, maintained incrementally on push/pop — the
//!   pre-PR-2 clone + sort of the fault vector per search node is gone.
//!
//! Queries are generic over [`GraphView`], so FT-greedy points the oracle
//! at the spanner's flat [`IncrementalCsr`](spanner_graph::IncrementalCsr)
//! view while one-off callers keep passing a [`Graph`]. The frozen
//! pre-optimization implementation survives as
//! [`crate::reference::ReferenceBranchingOracle`] and the equivalence
//! property tests pin this oracle's output (spanner and witnesses) to it.

use crate::fingerprint::{component_hash, SetFingerprint};
use crate::packing::{disjoint_path_packing_counted, PackingScratch};
use crate::{FaultModel, FaultOracle, FaultSet, OracleQuery, OracleStats};
use spanner_graph::connectivity::CutScratch;
use spanner_graph::{
    DijkstraEngine, Dist, EdgeId, FaultMask, Graph, GraphView, NodeId, PathScratch,
};
use std::collections::HashSet;

/// Feature toggles for [`BranchingOracle`] (used by the ablation benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchingConfig {
    /// Enable the disjoint-path packing prune.
    pub use_packing: bool,
    /// Enable fault-set memoization.
    pub use_memo: bool,
    /// Enable the global min-cut shortcut: if the whole graph has an
    /// `s–t` cut (vertex or edge, per model) of size ≤ budget, that cut
    /// blocks *every* path — in particular all short ones — so it is a
    /// valid witness without any search. Sound; found via bounded
    /// max-flow before branching starts.
    pub use_cut_shortcut: bool,
}

impl Default for BranchingConfig {
    fn default() -> Self {
        BranchingConfig {
            use_packing: true,
            use_memo: true,
            use_cut_shortcut: true,
        }
    }
}

/// The branching fault oracle. See the module docs.
///
/// # Examples
///
/// ```
/// use spanner_faults::{BranchingOracle, FaultModel, FaultOracle, OracleQuery};
/// use spanner_graph::{Dist, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut oracle = BranchingOracle::new();
/// let query = OracleQuery {
///     u: NodeId::new(0),
///     v: NodeId::new(3),
///     bound: Dist::finite(2),
///     budget: 2,
///     model: FaultModel::Vertex,
/// };
/// let f = oracle.find_blocking_faults(&g, query).unwrap();
/// assert_eq!(f.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct BranchingOracle {
    engine: DijkstraEngine,
    config: BranchingConfig,
    stats: OracleStats,
    scratch: SearchScratch,
}

/// Per-oracle reusable state (see the module docs). Everything here is
/// cleared — not reallocated — between queries.
#[derive(Debug, Default)]
struct SearchScratch {
    /// Working fault mask the DFS toggles in place.
    mask: FaultMask,
    /// The fault set along the current DFS root-to-node path.
    current: Vec<usize>,
    /// Order-independent fingerprints of visited fault sets.
    memo: HashSet<(u64, u64)>,
    /// Segmented candidate arena: each recursion level appends its
    /// candidates and truncates back on exit.
    cand: Vec<usize>,
    /// Incremental Zobrist fingerprint of `current` (shared scheme:
    /// [`crate::fingerprint`]).
    key: SetFingerprint,
    /// Shortest-path buffer for the node's witness path.
    path: PathScratch,
    /// Buffers for the packing probe.
    packing: PackingScratch,
    /// Flow network + residual buffers for the min-cut shortcut.
    cuts: CutScratch,
}

impl BranchingOracle {
    /// Creates an oracle with both accelerations enabled.
    pub fn new() -> Self {
        BranchingOracle::default()
    }

    /// Creates an oracle with explicit feature toggles.
    pub fn with_config(config: BranchingConfig) -> Self {
        BranchingOracle {
            engine: DijkstraEngine::new(),
            config,
            stats: OracleStats::default(),
            scratch: SearchScratch::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> BranchingConfig {
        self.config
    }

    /// Clears the per-query scratch (keeping allocations) and sizes the
    /// working mask for `view`. Counts a scratch rebuild when the mask
    /// storage genuinely grew.
    fn begin_query<V: GraphView>(&mut self, view: &V) {
        if self
            .scratch
            .mask
            .reset_for(view.node_count(), view.edge_count())
        {
            self.stats.scratch_rebuilds += 1;
        }
        self.scratch.current.clear();
        self.scratch.memo.clear();
        self.scratch.cand.clear();
        self.scratch.key = SetFingerprint::EMPTY;
    }

    /// Applies fault `c`: mask bit, DFS path, fingerprint.
    fn push_fault(&mut self, model: FaultModel, c: usize) {
        match model {
            FaultModel::Vertex => {
                self.scratch.mask.fault_vertex(NodeId::new(c));
            }
            FaultModel::Edge => {
                self.scratch.mask.fault_edge(EdgeId::new(c));
            }
        }
        self.scratch.current.push(c);
        self.scratch.key.add(component_hash(model, c));
    }

    /// Reverts [`BranchingOracle::push_fault`].
    fn pop_fault(&mut self, model: FaultModel) {
        let c = self.scratch.current.pop().expect("pop without push");
        match model {
            FaultModel::Vertex => {
                self.scratch.mask.restore_vertex(NodeId::new(c));
            }
            FaultModel::Edge => {
                self.scratch.mask.restore_edge(EdgeId::new(c));
            }
        }
        self.scratch.key.remove(component_hash(model, c));
    }

    /// The bounded-search-tree DFS. On success (`true`) the blocking set
    /// is left applied in `scratch.current`/`scratch.mask`; on failure all
    /// faults pushed at this level are reverted.
    fn search<V: GraphView>(&mut self, view: &V, q: &OracleQuery) -> bool {
        self.stats.nodes_explored += 1;
        self.stats.shortest_path_queries += 1;
        if !self.engine.shortest_path_bounded_into(
            view,
            q.u,
            q.v,
            q.bound,
            &self.scratch.mask,
            &mut self.scratch.path,
        ) {
            return true; // dist already exceeds the bound
        }
        let remaining = q.budget - self.scratch.current.len();
        if remaining == 0 {
            return false;
        }
        let cand_start = self.scratch.cand.len();
        match q.model {
            FaultModel::Vertex => {
                for n in self.scratch.path.interior_nodes() {
                    self.scratch.cand.push(n.index());
                }
            }
            FaultModel::Edge => {
                for e in self.scratch.path.edges() {
                    self.scratch.cand.push(e.index());
                }
            }
        }
        let cand_end = self.scratch.cand.len();
        if cand_end == cand_start {
            // Vertex model, direct u-v edge: unblockable.
            return false;
        }
        if self.config.use_packing {
            let probe = disjoint_path_packing_counted(
                view,
                &mut self.engine,
                &self.scratch.mask,
                q.u,
                q.v,
                q.bound,
                q.model,
                remaining + 1,
                &mut self.scratch.packing,
            );
            self.stats.shortest_path_queries += probe.queries;
            if probe.packed > remaining {
                self.stats.packing_prunes += 1;
                self.scratch.cand.truncate(cand_start);
                return false;
            }
        }
        let mut found = false;
        for i in cand_start..cand_end {
            let c = self.scratch.cand[i];
            self.push_fault(q.model, c);
            let skip = if self.config.use_memo {
                let key = self.scratch.key.pair();
                if self.scratch.memo.insert(key) {
                    false
                } else {
                    self.stats.memo_hits += 1;
                    true
                }
            } else {
                false
            };
            if !skip && self.search(view, q) {
                found = true;
                break;
            }
            self.pop_fault(q.model);
        }
        self.scratch.cand.truncate(cand_start);
        found
    }

    /// Builds the result fault set from the DFS path left in scratch.
    fn collect_current(&self, model: FaultModel) -> FaultSet {
        match model {
            FaultModel::Vertex => {
                FaultSet::vertices(self.scratch.current.iter().map(|c| NodeId::new(*c)))
            }
            FaultModel::Edge => {
                FaultSet::edges(self.scratch.current.iter().map(|c| EdgeId::new(*c)))
            }
        }
    }

    /// Like [`FaultOracle::find_blocking_faults`] but generic over the
    /// graph layout — FT-greedy points this at the spanner's incremental
    /// CSR view so the whole oracle loop runs over flat memory.
    pub fn find_blocking_faults_in<V: GraphView>(
        &mut self,
        view: &V,
        query: OracleQuery,
    ) -> Option<FaultSet> {
        self.begin_query(view);
        if self.config.use_cut_shortcut && query.budget > 0 {
            if let Some(cut) = cut_shortcut_with_prefilter(
                view,
                &mut self.engine,
                &self.scratch.mask,
                &mut self.scratch.packing,
                &mut self.scratch.cuts,
                &mut self.stats,
                query,
            ) {
                return Some(cut);
            }
        }
        if self.search(view, &query) {
            Some(self.collect_current(query.model))
        } else {
            None
        }
    }

    /// Like [`BranchingOracle::find_blocking_faults_in`], but starts the
    /// search from a pre-committed partial fault set (counted against the
    /// budget). Used by the parallel oracle to fan the root branches out
    /// across workers; also handy for "what if X were already down?"
    /// analyses.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is larger than the budget or disagrees with the
    /// query's fault model.
    pub fn find_blocking_faults_with_initial_in<V: GraphView>(
        &mut self,
        view: &V,
        query: OracleQuery,
        initial: &FaultSet,
    ) -> Option<FaultSet> {
        assert!(initial.len() <= query.budget, "initial set exceeds budget");
        assert!(
            initial.is_empty() || initial.model() == query.model,
            "initial set model mismatch"
        );
        self.begin_query(view);
        match initial {
            FaultSet::Vertices(v) => {
                for n in v.iter() {
                    self.push_fault(FaultModel::Vertex, n.index());
                }
            }
            FaultSet::Edges(e) => {
                for id in e.iter() {
                    self.push_fault(FaultModel::Edge, id.index());
                }
            }
        }
        if self.search(view, &query) {
            Some(self.collect_current(query.model))
        } else {
            None
        }
    }

    /// [`BranchingOracle::find_blocking_faults_with_initial_in`] over a
    /// plain [`Graph`] (kept for API compatibility).
    pub fn find_blocking_faults_with_initial(
        &mut self,
        graph: &Graph,
        query: OracleQuery,
        initial: &FaultSet,
    ) -> Option<FaultSet> {
        self.find_blocking_faults_with_initial_in(graph, query, initial)
    }
}

/// The shared front of both exact oracles: a Menger disjoint-path
/// pre-filter followed — only when the pre-filter proves nothing — by the
/// exact min-cut shortcut. One implementation serves the sequential and
/// the pooled parallel oracle so their root phases cannot drift apart
/// (their outputs are contractually identical).
///
/// The pre-filter greedily packs `budget + 1` pairwise disjoint `u–v`
/// paths of *unbounded* length. Any such family is a Menger certificate
/// that every `u–v` cut exceeds the budget, so the exact max-flow — which
/// would build and solve a network only to answer "no cut" — is skipped
/// with byte-identical output. Greedy packing is not Menger-optimal, so a
/// short family proves nothing and the exact cut runs.
///
/// `mask` must be the query's (empty) base mask. Returns `Some(witness)`
/// when a cut within budget decides the query; `None` means "no shortcut
/// — run the branching search".
pub(crate) fn cut_shortcut_with_prefilter<V: GraphView>(
    view: &V,
    engine: &mut DijkstraEngine,
    mask: &FaultMask,
    packing: &mut PackingScratch,
    cuts: &mut CutScratch,
    stats: &mut OracleStats,
    query: OracleQuery,
) -> Option<FaultSet> {
    let probe = disjoint_path_packing_counted(
        view,
        engine,
        mask,
        query.u,
        query.v,
        Dist::INFINITE,
        query.model,
        query.budget + 1,
        packing,
    );
    stats.shortest_path_queries += probe.queries;
    if probe.packed > query.budget {
        return None; // certified: no cut within budget exists
    }
    let witness = match query.model {
        FaultModel::Vertex => spanner_graph::connectivity::min_vertex_cut_st_with(
            view,
            mask,
            query.u,
            query.v,
            query.budget as u32,
            cuts,
        )
        .map(FaultSet::vertices),
        FaultModel::Edge => spanner_graph::connectivity::min_edge_cut_st_with(
            view,
            mask,
            query.u,
            query.v,
            query.budget as u32,
            cuts,
        )
        .map(FaultSet::edges),
    };
    if witness.is_some() {
        stats.cut_shortcuts += 1;
    }
    witness
}

impl FaultOracle for BranchingOracle {
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet> {
        self.find_blocking_faults_in(graph, query)
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::Dist;

    fn q(u: usize, v: usize, bound: u64, budget: usize, model: FaultModel) -> OracleQuery {
        OracleQuery {
            u: NodeId::new(u),
            v: NodeId::new(v),
            bound: Dist::finite(bound),
            budget,
            model,
        }
    }

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn finds_vertex_cut() {
        let g = diamond();
        let mut o = BranchingOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex))
            .unwrap();
        assert_eq!(f, FaultSet::vertices([NodeId::new(1), NodeId::new(2)]));
    }

    #[test]
    fn budget_too_small_fails() {
        let g = diamond();
        let mut o = BranchingOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 3, 2, 1, FaultModel::Vertex))
            .is_none());
    }

    #[test]
    fn direct_edge_unblockable_in_vertex_model() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut o = BranchingOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 1, 1, 10, FaultModel::Vertex))
            .is_none());
    }

    #[test]
    fn edge_model_blocks_direct_edge() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut o = BranchingOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 1, 1, 1, FaultModel::Edge))
            .unwrap();
        assert_eq!(f, FaultSet::edges([EdgeId::new(0)]));
    }

    #[test]
    fn already_far_needs_no_faults() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut o = BranchingOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 2, 1, 0, FaultModel::Vertex))
            .unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn all_config_variants_agree_on_diamond() {
        let g = diamond();
        for use_packing in [false, true] {
            for use_memo in [false, true] {
                for use_cut_shortcut in [false, true] {
                    let mut o = BranchingOracle::with_config(BranchingConfig {
                        use_packing,
                        use_memo,
                        use_cut_shortcut,
                    });
                    let f = o.find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex));
                    assert!(
                        f.is_some(),
                        "packing={use_packing} memo={use_memo} cut={use_cut_shortcut}"
                    );
                    let none = o.find_blocking_faults(&g, q(0, 3, 2, 1, FaultModel::Vertex));
                    assert!(
                        none.is_none(),
                        "packing={use_packing} memo={use_memo} cut={use_cut_shortcut}"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_bound_respected() {
        // 0 -5- 1, alternative 0 -1- 2 -1- 1. Stretch bound 10: alt path
        // weight 2 <= 10, needs vertex 2 faulted.
        let g = Graph::from_weighted_edges(3, [(0, 2, 1), (2, 1, 1)]).unwrap();
        let mut o = BranchingOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 1, 10, 1, FaultModel::Vertex))
            .unwrap();
        assert_eq!(f, FaultSet::vertices([NodeId::new(2)]));
    }

    #[test]
    fn returned_set_actually_blocks() {
        use spanner_graph::dijkstra;
        let g =
            Graph::from_edges(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4), (4, 5)]).unwrap();
        let mut o = BranchingOracle::new();
        let query = q(0, 5, 2, 2, FaultModel::Vertex);
        let f = o.find_blocking_faults(&g, query).unwrap();
        let mask = f.to_mask(g.node_count(), g.edge_count());
        let d = dijkstra::dist(&g, NodeId::new(0), NodeId::new(5), &mask);
        assert!(d > Dist::finite(2));
    }

    #[test]
    fn scratch_rebuilds_go_flat_after_first_query() {
        // The mask/memo/arena reuse contract: the first query on a graph
        // of a given size may grow scratch; repeats must not.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 4), (4, 5)]).unwrap();
        let mut o = BranchingOracle::new();
        let query = q(0, 5, 2, 2, FaultModel::Vertex);
        let _ = o.find_blocking_faults(&g, query);
        let after_first = o.stats().scratch_rebuilds;
        assert!(after_first >= 1, "first query must size the scratch");
        for _ in 0..50 {
            let _ = o.find_blocking_faults(&g, query);
        }
        assert_eq!(
            o.stats().scratch_rebuilds,
            after_first,
            "steady-state queries must not rebuild scratch"
        );
    }

    #[test]
    fn memo_reduces_exploration() {
        // A graph with many symmetric routes provokes permutation blowup.
        let mut g = Graph::new(2);
        for _ in 0..6 {
            let a = g.add_node();
            let b = g.add_node();
            g.add_edge(NodeId::new(0), a, spanner_graph::Weight::UNIT);
            g.add_edge(a, b, spanner_graph::Weight::UNIT);
            g.add_edge(b, NodeId::new(1), spanner_graph::Weight::UNIT);
        }
        let query = q(0, 1, 3, 4, FaultModel::Vertex);
        let mut with_memo = BranchingOracle::with_config(BranchingConfig {
            use_packing: false,
            use_memo: true,
            use_cut_shortcut: false,
        });
        let mut without_memo = BranchingOracle::with_config(BranchingConfig {
            use_packing: false,
            use_memo: false,
            use_cut_shortcut: false,
        });
        let a = with_memo.find_blocking_faults(&g, query);
        let b = without_memo.find_blocking_faults(&g, query);
        assert_eq!(a.is_some(), b.is_some());
        assert!(
            with_memo.stats().nodes_explored <= without_memo.stats().nodes_explored,
            "memo {} vs plain {}",
            with_memo.stats().nodes_explored,
            without_memo.stats().nodes_explored
        );
    }
}
