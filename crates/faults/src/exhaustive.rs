//! Brute-force fault oracle: try every candidate subset.
//!
//! Cost is `O(n^f)` (or `m^f`) shortest-path queries — usable only on tiny
//! instances, but unconditionally correct by inspection, which makes it the
//! ground truth the smarter oracles are property-tested against.

use crate::{FaultModel, FaultOracle, FaultSet, OracleQuery, OracleStats};
use spanner_graph::{DijkstraEngine, EdgeId, FaultMask, Graph, NodeId};

/// The brute-force oracle. See the module docs.
///
/// # Examples
///
/// ```
/// use spanner_faults::{ExhaustiveOracle, FaultModel, FaultOracle, OracleQuery};
/// use spanner_graph::{Dist, Graph, NodeId};
///
/// // Two vertex-disjoint 2-hop routes between 0 and 3.
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut oracle = ExhaustiveOracle::new();
/// let query = OracleQuery {
///     u: NodeId::new(0),
///     v: NodeId::new(3),
///     bound: Dist::finite(2),
///     budget: 1,
///     model: FaultModel::Vertex,
/// };
/// // One fault cannot block both routes...
/// assert!(oracle.find_blocking_faults(&g, query).is_none());
/// // ...but two can.
/// let query = OracleQuery { budget: 2, ..query };
/// let f = oracle.find_blocking_faults(&g, query).unwrap();
/// assert_eq!(f.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct ExhaustiveOracle {
    engine: DijkstraEngine,
    stats: OracleStats,
}

impl ExhaustiveOracle {
    /// Creates a fresh oracle.
    pub fn new() -> Self {
        ExhaustiveOracle::default()
    }

    fn blocked(&mut self, graph: &Graph, q: &OracleQuery, mask: &FaultMask) -> bool {
        self.stats.shortest_path_queries += 1;
        self.engine
            .dist_bounded(graph, q.u, q.v, q.bound, mask)
            .is_none()
    }

    /// Recursively extends `chosen` with candidates from `candidates[from..]`.
    #[allow(clippy::too_many_arguments)]
    fn search(
        &mut self,
        graph: &Graph,
        q: &OracleQuery,
        candidates: &[usize],
        from: usize,
        remaining: usize,
        mask: &mut FaultMask,
        chosen: &mut Vec<usize>,
    ) -> bool {
        self.stats.nodes_explored += 1;
        if self.blocked(graph, q, mask) {
            return true;
        }
        if remaining == 0 {
            return false;
        }
        for i in from..candidates.len() {
            let c = candidates[i];
            match q.model {
                FaultModel::Vertex => {
                    mask.fault_vertex(NodeId::new(c));
                }
                FaultModel::Edge => {
                    mask.fault_edge(EdgeId::new(c));
                }
            }
            chosen.push(c);
            if self.search(graph, q, candidates, i + 1, remaining - 1, mask, chosen) {
                return true;
            }
            chosen.pop();
            match q.model {
                FaultModel::Vertex => {
                    mask.restore_vertex(NodeId::new(c));
                }
                FaultModel::Edge => {
                    mask.restore_edge(EdgeId::new(c));
                }
            }
        }
        false
    }
}

impl FaultOracle for ExhaustiveOracle {
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet> {
        let candidates: Vec<usize> = match query.model {
            FaultModel::Vertex => graph
                .nodes()
                .filter(|n| *n != query.u && *n != query.v)
                .map(|n| n.index())
                .collect(),
            FaultModel::Edge => graph.edge_ids().map(|e| e.index()).collect(),
        };
        let mut mask = FaultMask::for_graph(graph);
        let mut chosen = Vec::new();
        if self.search(
            graph,
            &query,
            &candidates,
            0,
            query.budget,
            &mut mask,
            &mut chosen,
        ) {
            Some(match query.model {
                FaultModel::Vertex => FaultSet::vertices(chosen.into_iter().map(NodeId::new)),
                FaultModel::Edge => FaultSet::edges(chosen.into_iter().map(EdgeId::new)),
            })
        } else {
            None
        }
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::Dist;

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap()
    }

    fn q(u: usize, v: usize, bound: u64, budget: usize, model: FaultModel) -> OracleQuery {
        OracleQuery {
            u: NodeId::new(u),
            v: NodeId::new(v),
            bound: Dist::finite(bound),
            budget,
            model,
        }
    }

    #[test]
    fn finds_vertex_cut() {
        let g = diamond();
        let mut o = ExhaustiveOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex))
            .unwrap();
        assert_eq!(f, FaultSet::vertices([NodeId::new(1), NodeId::new(2)]));
    }

    #[test]
    fn respects_budget() {
        let g = diamond();
        let mut o = ExhaustiveOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 3, 2, 1, FaultModel::Vertex))
            .is_none());
    }

    #[test]
    fn edge_model_needs_two_faults_too() {
        let g = diamond();
        let mut o = ExhaustiveOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 3, 2, 1, FaultModel::Edge))
            .is_none());
        let f = o
            .find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Edge))
            .unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.model(), FaultModel::Edge);
    }

    #[test]
    fn zero_budget_succeeds_when_already_far() {
        // Path 0-1-2: dist(0, 2) = 2 > 1 already.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut o = ExhaustiveOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 2, 1, 0, FaultModel::Vertex))
            .unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn direct_edge_unblockable_by_vertices() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut o = ExhaustiveOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 1, 1, 5, FaultModel::Vertex))
            .is_none());
        // ...but trivially blockable by one edge fault.
        let f = o
            .find_blocking_faults(&g, q(0, 1, 1, 1, FaultModel::Edge))
            .unwrap();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let g = diamond();
        let mut o = ExhaustiveOracle::new();
        let _ = o.find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex));
        assert!(o.stats().shortest_path_queries > 0);
        o.reset_stats();
        assert_eq!(o.stats(), OracleStats::default());
    }
}
