//! Cross-validation: the three exact fault oracles must agree everywhere.
//!
//! `ExhaustiveOracle` is correct by inspection; `BranchingOracle` and
//! `HittingSetOracle` use entirely different search strategies. Agreement
//! across random graphs, both fault models, random bounds and budgets is
//! the core correctness evidence for the FT-greedy implementation built on
//! top of them.

use proptest::prelude::*;
use spanner_faults::{
    BranchingConfig, BranchingOracle, ExhaustiveOracle, FaultModel, FaultOracle, HittingSetOracle,
    OracleQuery,
};
use spanner_graph::{dijkstra, Dist, Graph, NodeId, Weight};

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    // ~60% keep rate.
                    if keep[i] < 6 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

/// Checks that a returned fault set is a valid witness for the query.
fn assert_valid_witness(g: &Graph, q: &OracleQuery, f: &spanner_faults::FaultSet) {
    assert!(f.len() <= q.budget, "witness exceeds budget");
    assert_eq!(f.model(), q.model);
    for n in f.vertex_faults() {
        assert_ne!(*n, q.u, "witness faults an endpoint");
        assert_ne!(*n, q.v, "witness faults an endpoint");
    }
    let mask = f.to_mask(g.node_count(), g.edge_count());
    let d = dijkstra::dist(g, q.u, q.v, &mask);
    assert!(
        d > q.bound,
        "witness does not block: dist {d} <= bound {}",
        q.bound
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn oracles_agree_vertex_model(
        g in arb_graph(7, 3),
        budget in 0usize..3,
        bound in 1u64..8,
    ) {
        let q = OracleQuery {
            u: NodeId::new(0),
            v: NodeId::new(1),
            bound: Dist::finite(bound),
            budget,
            model: FaultModel::Vertex,
        };
        let mut exhaustive = ExhaustiveOracle::new();
        let mut branching = BranchingOracle::new();
        let mut hitting = HittingSetOracle::new();
        let a = exhaustive.find_blocking_faults(&g, q);
        let b = branching.find_blocking_faults(&g, q);
        let c = hitting.find_blocking_faults(&g, q);
        prop_assert_eq!(a.is_some(), b.is_some(), "exhaustive vs branching");
        prop_assert_eq!(a.is_some(), c.is_some(), "exhaustive vs hitting");
        for witness in [a, b, c].into_iter().flatten() {
            assert_valid_witness(&g, &q, &witness);
        }
    }

    #[test]
    fn oracles_agree_edge_model(
        g in arb_graph(6, 3),
        budget in 0usize..3,
        bound in 1u64..8,
    ) {
        let q = OracleQuery {
            u: NodeId::new(0),
            v: NodeId::new(1),
            bound: Dist::finite(bound),
            budget,
            model: FaultModel::Edge,
        };
        let mut exhaustive = ExhaustiveOracle::new();
        let mut branching = BranchingOracle::new();
        let mut hitting = HittingSetOracle::new();
        let a = exhaustive.find_blocking_faults(&g, q);
        let b = branching.find_blocking_faults(&g, q);
        let c = hitting.find_blocking_faults(&g, q);
        prop_assert_eq!(a.is_some(), b.is_some(), "exhaustive vs branching");
        prop_assert_eq!(a.is_some(), c.is_some(), "exhaustive vs hitting");
        for witness in [a, b, c].into_iter().flatten() {
            assert_valid_witness(&g, &q, &witness);
        }
    }

    #[test]
    fn branching_ablations_agree(
        g in arb_graph(7, 2),
        budget in 0usize..4,
        bound in 1u64..7,
    ) {
        let q = OracleQuery {
            u: NodeId::new(0),
            v: NodeId::new(2),
            bound: Dist::finite(bound),
            budget,
            model: FaultModel::Vertex,
        };
        let mut reference: Option<bool> = None;
        for use_packing in [false, true] {
            for use_memo in [false, true] {
                for use_cut_shortcut in [false, true] {
                    let mut oracle = BranchingOracle::with_config(BranchingConfig {
                        use_packing,
                        use_memo,
                        use_cut_shortcut,
                    });
                    let found = oracle.find_blocking_faults(&g, q);
                    if let Some(ref w) = found {
                        assert_valid_witness(&g, &q, w);
                    }
                    match reference {
                        None => reference = Some(found.is_some()),
                        Some(r) => prop_assert_eq!(
                            r,
                            found.is_some(),
                            "packing={} memo={} cut={}",
                            use_packing,
                            use_memo,
                            use_cut_shortcut
                        ),
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The polynomial heuristic may miss blocking sets, but it must never
    /// fabricate one: every witness blocks (checked by `assert_valid_witness`)
    /// and a `Some` answer implies the exact oracle also answers `Some`.
    #[test]
    fn heuristic_is_sound_but_maybe_incomplete(
        g in arb_graph(7, 3),
        budget in 0usize..3,
        bound in 1u64..8,
    ) {
        use spanner_faults::GreedyHeuristicOracle;
        for model in [FaultModel::Vertex, FaultModel::Edge] {
            let q = OracleQuery {
                u: NodeId::new(0),
                v: NodeId::new(1),
                bound: Dist::finite(bound),
                budget,
                model,
            };
            let mut heuristic = GreedyHeuristicOracle::new();
            let mut exact = ExhaustiveOracle::new();
            let h = heuristic.find_blocking_faults(&g, q);
            if let Some(ref w) = h {
                assert_valid_witness(&g, &q, w);
                let e = exact.find_blocking_faults(&g, q);
                prop_assert!(e.is_some(), "heuristic found a witness the exact oracle denies");
            }
        }
    }

    /// Oracle work counters are monotone under growing budgets for the
    /// exact branching search (more budget, at least as much exploration
    /// on failure-heavy instances is NOT guaranteed per-case, but the
    /// returned answers must be monotone: once blockable, always blockable
    /// with more budget).
    #[test]
    fn blockability_is_monotone_in_budget(
        g in arb_graph(7, 3),
        bound in 1u64..8,
    ) {
        let mut prev: Option<bool> = None;
        for budget in 0..4usize {
            let q = OracleQuery {
                u: NodeId::new(0),
                v: NodeId::new(1),
                bound: Dist::finite(bound),
                budget,
                model: FaultModel::Vertex,
            };
            let found = BranchingOracle::new().find_blocking_faults(&g, q).is_some();
            if let Some(p) = prev {
                prop_assert!(!p || found, "blockable at budget {} but not {}", budget - 1, budget);
            }
            prev = Some(found);
        }
    }
}
