//! Bench companion to experiment E9 (Figure 4): single-query oracle cost
//! as the fault budget grows, across oracle implementations — the
//! exponential-in-f open problem measured in wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_faults::{
    BranchingConfig, BranchingOracle, ExhaustiveOracle, FaultModel, FaultOracle,
    GreedyHeuristicOracle, HittingSetOracle, OracleQuery,
};
use spanner_graph::generators::erdos_renyi;
use spanner_graph::{Dist, NodeId};

fn query(f: usize) -> OracleQuery {
    OracleQuery {
        u: NodeId::new(0),
        v: NodeId::new(1),
        bound: Dist::finite(3),
        budget: f,
        model: FaultModel::Vertex,
    }
}

fn bench_oracle_scaling_in_f(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(909);
    let g = erdos_renyi(40, 0.3, &mut rng);
    let mut group = c.benchmark_group("e9_oracle_vs_f");
    group.sample_size(10);
    for f in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("branching_pruned", f), &f, |b, &f| {
            b.iter(|| BranchingOracle::new().find_blocking_faults(&g, query(f)));
        });
        group.bench_with_input(BenchmarkId::new("branching_naive", f), &f, |b, &f| {
            b.iter(|| {
                BranchingOracle::with_config(BranchingConfig {
                    use_packing: false,
                    use_memo: false,
                    use_cut_shortcut: false,
                })
                .find_blocking_faults(&g, query(f))
            });
        });
    }
    for f in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("heuristic_inexact", f), &f, |b, &f| {
            b.iter(|| GreedyHeuristicOracle::new().find_blocking_faults(&g, query(f)));
        });
    }
    for f in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("exhaustive", f), &f, |b, &f| {
            b.iter(|| ExhaustiveOracle::new().find_blocking_faults(&g, query(f)));
        });
        group.bench_with_input(BenchmarkId::new("hitting_set", f), &f, |b, &f| {
            b.iter(|| HittingSetOracle::new().find_blocking_faults(&g, query(f)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_scaling_in_f);
criterion_main!(benches);
