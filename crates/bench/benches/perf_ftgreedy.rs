//! FT-greedy end-to-end wall-clock: optimized hot path vs the frozen
//! pre-optimization reference.
//!
//! The E1-style workload (random geometric / complete graphs, stretch 3,
//! f ∈ {1, 2}) is the one the paper's size experiments run; this bench
//! tracks the construction cost of exactly that workload across the three
//! oracle paths:
//!
//! * `reference` — [`ReferenceBranchingOracle`] through
//!   [`FtGreedy::run_with_oracle`]: fresh mask/memo/candidate allocations
//!   per query, Dijkstra over the adjacency-list graph (the pre-PR-2
//!   behavior);
//! * `optimized` — the default [`OracleKind::Branching`] path: incremental
//!   CSR view + per-construction scratch + Zobrist memo;
//! * `pooled` — [`OracleKind::Parallel`]: same, with root subtrees fanned
//!   over the persistent worker pool.
//!
//! `BENCH_2.json` (committed) records the same comparison with exact
//! numbers via `cargo run -p spanner-harness --bin perfbench`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{FtGreedy, OracleKind};
use spanner_faults::reference::ReferenceBranchingOracle;
use spanner_graph::generators::{complete, random_geometric, with_uniform_weights};
use spanner_graph::Graph;

fn workload() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(2);
    vec![
        (
            "complete_n24",
            with_uniform_weights(&complete(24), 1, 32, &mut rng),
        ),
        ("geometric_n64", random_geometric(64, 0.28, &mut rng)),
    ]
}

fn bench_ftgreedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_ftgreedy");
    group.sample_size(10);
    for (family, g) in workload() {
        for f in [1usize, 2] {
            group.bench_function(format!("{family}/f{f}/reference"), |b| {
                b.iter(|| {
                    let mut oracle = ReferenceBranchingOracle::new();
                    FtGreedy::new(&g, 3).faults(f).run_with_oracle(&mut oracle)
                });
            });
            group.bench_function(format!("{family}/f{f}/optimized"), |b| {
                b.iter(|| FtGreedy::new(&g, 3).faults(f).run());
            });
            group.bench_function(format!("{family}/f{f}/pooled"), |b| {
                b.iter(|| {
                    FtGreedy::new(&g, 3)
                        .faults(f)
                        .oracle(OracleKind::Parallel(4))
                        .run()
                });
            });
        }
    }
    group.finish();
}

/// A deliberately tiny instance for the CI bench-smoke job: run with
/// `cargo bench -p spanner-bench --bench perf_ftgreedy -- smoke` to prove
/// the bench target executes end-to-end without paying for the full
/// workload.
fn bench_smoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_ftgreedy_smoke");
    group.sample_size(2);
    let mut rng = StdRng::seed_from_u64(2);
    let g = with_uniform_weights(&complete(8), 1, 8, &mut rng);
    group.bench_function("complete_n8/f1/optimized", |b| {
        b.iter(|| FtGreedy::new(&g, 3).faults(1).run());
    });
    group.bench_function("complete_n8/f1/reference", |b| {
        b.iter(|| {
            let mut oracle = ReferenceBranchingOracle::new();
            FtGreedy::new(&g, 3).faults(1).run_with_oracle(&mut oracle)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ftgreedy, bench_smoke);
criterion_main!(benches);
