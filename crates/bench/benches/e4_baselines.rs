//! Bench companion to experiments E4/E5 (Tables 4/5): construction time of
//! the FT greedy against the polynomial-time baselines on one fixed input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::baselines::{dk_spanner, union_eft_spanner, DkParams};
use spanner_core::FtGreedy;
use spanner_faults::FaultModel;
use spanner_graph::generators::erdos_renyi;

fn bench_vft_constructions(c: &mut Criterion) {
    let n = 60;
    let mut rng = StdRng::seed_from_u64(404);
    let g = erdos_renyi(n, 0.2, &mut rng);
    let mut group = c.benchmark_group("e4_vft_constructions");
    group.sample_size(10);
    for f in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("ft_greedy_vft", f), &f, |b, &f| {
            b.iter(|| FtGreedy::new(&g, 3).faults(f).run());
        });
        group.bench_with_input(BenchmarkId::new("dk_baseline", f), &f, |b, &f| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(405);
                dk_spanner(&g, 3, DkParams::heuristic(n, f, 3.0), &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_eft_constructions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(406);
    let g = erdos_renyi(60, 0.2, &mut rng);
    let mut group = c.benchmark_group("e5_eft_constructions");
    group.sample_size(10);
    for f in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("ft_greedy_eft", f), &f, |b, &f| {
            b.iter(|| FtGreedy::new(&g, 3).faults(f).model(FaultModel::Edge).run());
        });
        group.bench_with_input(BenchmarkId::new("union_baseline", f), &f, |b, &f| {
            b.iter(|| union_eft_spanner(&g, 3, f));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vft_constructions, bench_eft_constructions);
criterion_main!(benches);
