//! Bench companion to experiment E1 (Table 1): FT-greedy construction time
//! as the fault budget grows. The size data lives in `repro e1`; this
//! measures the wall-clock side of the same sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{greedy_spanner, FtGreedy};
use spanner_graph::generators::erdos_renyi;

fn bench_construction_vs_f(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(101);
    let g = erdos_renyi(60, 0.2, &mut rng);
    let mut group = c.benchmark_group("e1_construction_vs_f");
    group.sample_size(10);
    group.bench_function("classic_greedy", |b| {
        b.iter(|| greedy_spanner(&g, 3));
    });
    for f in [0usize, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::new("ft_greedy", f), &f, |b, &f| {
            b.iter(|| FtGreedy::new(&g, 3).faults(f).run());
        });
    }
    group.finish();
}

fn bench_construction_vs_stretch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(102);
    let g = erdos_renyi(60, 0.2, &mut rng);
    let mut group = c.benchmark_group("e1_construction_vs_stretch");
    group.sample_size(10);
    for stretch in [1u64, 3, 5] {
        group.bench_with_input(
            BenchmarkId::new("ft_greedy_f1", stretch),
            &stretch,
            |b, &s| {
                b.iter(|| FtGreedy::new(&g, s).faults(1).run());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_construction_vs_f,
    bench_construction_vs_stretch
);
criterion_main!(benches);
