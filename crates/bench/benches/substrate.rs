//! Substrate micro-benchmarks: the primitives every experiment leans on
//! (fault-masked Dijkstra, girth, generators, blocking-set verification,
//! Lemma 4 peeling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{peel, verify_blocking_set, BlockingSet, FtGreedy};
use spanner_extremal::high_girth::high_girth_graph;
use spanner_extremal::projective;
use spanner_graph::generators::{cartesian_product, complete_bipartite, erdos_renyi};
use spanner_graph::{csr::CsrGraph, dijkstra, girth, Dist, FaultMask, NodeId};

fn bench_dijkstra(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let g = erdos_renyi(300, 0.05, &mut rng);
    let mask = FaultMask::for_graph(&g);
    let mut faulted = FaultMask::for_graph(&g);
    for v in 0..10 {
        // Offset by one so the query source (node 0) is never faulted.
        faulted.fault_vertex(NodeId::new(v * 7 + 1));
    }
    let mut group = c.benchmark_group("substrate_dijkstra");
    group.sample_size(20);
    group.bench_function("sssp_unmasked", |b| {
        let mut engine = dijkstra::DijkstraEngine::new();
        b.iter(|| engine.sssp(&g, NodeId::new(0), &mask));
    });
    group.bench_function("sssp_masked", |b| {
        let mut engine = dijkstra::DijkstraEngine::new();
        b.iter(|| engine.sssp(&g, NodeId::new(0), &faulted));
    });
    group.bench_function("bounded_pair_query", |b| {
        let mut engine = dijkstra::DijkstraEngine::new();
        b.iter(|| {
            engine.dist_bounded(&g, NodeId::new(0), NodeId::new(200), Dist::finite(3), &mask)
        });
    });
    let csr = CsrGraph::from_graph(&g);
    group.bench_function("sssp_csr_layout", |b| {
        b.iter(|| csr.sssp(NodeId::new(0), &mask));
    });
    group.bench_function("bounded_pair_query_csr", |b| {
        b.iter(|| csr.dist_bounded(NodeId::new(0), NodeId::new(200), Dist::finite(3), &mask));
    });
    group.finish();
}

fn bench_girth(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_girth");
    group.sample_size(10);
    let heawood_blowup = cartesian_product(&projective::heawood(), &complete_bipartite(2, 2));
    group.bench_function("girth_product_graph", |b| {
        let mask = FaultMask::for_graph(&heawood_blowup);
        b.iter(|| girth::girth(&heawood_blowup, &mask));
    });
    let mut rng = StdRng::seed_from_u64(12);
    let sparse = erdos_renyi(400, 0.01, &mut rng);
    group.bench_function("girth_sparse_random", |b| {
        let mask = FaultMask::for_graph(&sparse);
        b.iter(|| girth::girth_up_to(&sparse, &mask, 8));
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_generators");
    group.sample_size(10);
    group.bench_function("erdos_renyi_2k", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| erdos_renyi(2000, 0.005, &mut rng));
    });
    group.bench_function("projective_plane_q7", |b| {
        b.iter(|| projective::incidence_graph(7).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("high_girth", 6), &6usize, |b, &g| {
        let mut rng = StdRng::seed_from_u64(14);
        b.iter(|| high_girth_graph(120, g, &mut rng));
    });
    group.finish();
}

fn bench_lemmas(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(15);
    let g = erdos_renyi(60, 0.2, &mut rng);
    let ft = FtGreedy::new(&g, 3).faults(2).run();
    let blocking = BlockingSet::from_witnesses(&ft);
    let mut group = c.benchmark_group("substrate_lemmas");
    group.sample_size(10);
    group.bench_function("e6_verify_blocking_set", |b| {
        b.iter(|| verify_blocking_set(ft.spanner().graph(), &blocking, 4, 1_000_000));
    });
    group.bench_function("e7_peel_round", |b| {
        let mut rng = StdRng::seed_from_u64(16);
        b.iter(|| peel(ft.spanner().graph(), &blocking, 2, 4, &mut rng));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dijkstra,
    bench_girth,
    bench_generators,
    bench_lemmas
);
criterion_main!(benches);
