//! Criterion micro-benchmarks for the `vft-spanner` workspace.
//!
//! This crate carries no library code — it exists for its `benches/`
//! targets, which track the performance-sensitive layers end to end:
//!
//! * `substrate` — graph-layer primitives: adjacency-list vs CSR vs
//!   packed frozen-CSR traversal and Dijkstra on identical workloads;
//! * `perf_ftgreedy` — the construction trajectory behind the committed
//!   `BENCH_2.json`: reference vs optimized vs pooled FT-greedy oracles;
//! * `e1_size_vs_f`, `e4_baselines`, `e9_oracle` — experiment-shaped
//!   benchmarks mirroring the harness's E1/E4/E9 sweeps.
//!
//! Run with `cargo bench` (or `cargo bench --no-run` for the CI compile
//! smoke). The serving-side trajectory is measured by the `querybench`
//! harness binary instead, because its artifact (`BENCH_4.json`) needs
//! the strict JSON plumbing that lives in `spanner_harness`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
