//! Property tests for the extremal machinery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_extremal::high_girth::{delete_short_cycles, high_girth_graph};
use spanner_extremal::lower_bound::biclique_blowup;
use spanner_extremal::moore::{corollary2_bound, moore_bound, theorem1_bound};
use spanner_extremal::projective::ProjectivePlane;
use spanner_graph::{generators, girth, FaultMask};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn high_girth_generator_always_delivers(
        n in 10usize..80,
        girth_above in 3usize..8,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = high_girth_graph(n, girth_above, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        let mask = FaultMask::for_graph(&g);
        prop_assert!(girth::has_girth_greater_than(&g, &mask, girth_above));
    }

    #[test]
    fn deletion_is_idempotent(n in 8usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, 0.3, &mut rng);
        let once = delete_short_cycles(&g, 5);
        let twice = delete_short_cycles(&once, 5);
        prop_assert_eq!(once.edge_count(), twice.edge_count());
    }

    #[test]
    fn moore_curves_are_ordered(n in 10u64..5000, f in 1u64..10, k in 1u64..6) {
        let nf = n as f64;
        // Theorem 1 at stretch 2k-1 dominates the f=0 case.
        prop_assert!(theorem1_bound(nf, f, 2 * k - 1) + 1e-9 >= theorem1_bound(nf, 0, 2 * k - 1));
        // Corollary 2 grows with f and with n.
        prop_assert!(corollary2_bound(nf, f + 1, k) >= corollary2_bound(nf, f, k));
        prop_assert!(corollary2_bound(nf * 2.0, f, k) >= corollary2_bound(nf, f, k));
        // Moore bound decreases in the girth parameter.
        prop_assert!(moore_bound(nf, 3) + 1e-9 >= moore_bound(nf, 4));
    }

    #[test]
    fn blowup_edge_and_node_counts(base_n in 4usize..12, t in 1usize..4) {
        let base = generators::cycle(base_n);
        let blow = biclique_blowup(&base, t);
        prop_assert_eq!(blow.graph().node_count(), base_n * t);
        prop_assert_eq!(blow.graph().edge_count(), base_n * t * t);
        // Every product edge maps to a base edge with consistent endpoints.
        for e in blow.graph().edge_ids() {
            let be = blow.base_edge_of(e);
            let (u, v) = blow.graph().endpoints(e);
            let (bu, _) = blow.coordinates(u);
            let (bv, _) = blow.coordinates(v);
            let (eu, ev) = base.endpoints(be);
            prop_assert!((bu, bv) == (eu, ev) || (bu, bv) == (ev, eu));
        }
    }

    #[test]
    fn blowup_critical_sets_stay_in_budget(base_n in 5usize..10, t in 2usize..4) {
        let base = generators::cycle(base_n);
        let blow = biclique_blowup(&base, t);
        for probe in [0usize, 3, 7] {
            let e = spanner_graph::EdgeId::new(probe % blow.graph().edge_count());
            let faults = blow.critical_fault_set(e);
            prop_assert_eq!(faults.len(), 2 * (t - 1));
            let (u, v) = blow.graph().endpoints(e);
            prop_assert!(!faults.contains(&u));
            prop_assert!(!faults.contains(&v));
        }
    }
}

#[test]
fn projective_plane_duality_for_several_orders() {
    for q in [2u64, 3, 5, 7] {
        let plane = ProjectivePlane::new(q).unwrap();
        let n = plane.point_count();
        // Every point lies on exactly q+1 lines (dual of the line test).
        for p in 0..n {
            let lines = (0..n).filter(|&l| plane.incident(p, l)).count();
            assert_eq!(lines as u64, q + 1, "q={q}, point {p}");
        }
    }
}
