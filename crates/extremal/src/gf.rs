//! Arithmetic in the prime field GF(p).
//!
//! Projective planes `PG(2, q)` over prime `q` give the densest known
//! girth-6 graphs (they meet the Moore bound). This module provides the
//! minimal field arithmetic those constructions need; only prime orders are
//! supported (prime powers would need polynomial arithmetic, which no
//! experiment requires).

use std::error::Error;
use std::fmt;

/// Error returned when a field order is not a supported prime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotPrimeError {
    order: u64,
}

impl fmt::Display for NotPrimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "field order {} is not a prime in the supported range",
            self.order
        )
    }
}

impl Error for NotPrimeError {}

/// The prime field GF(p).
///
/// Elements are canonical residues `0..p` stored as `u64`.
///
/// # Examples
///
/// ```
/// use spanner_extremal::gf::PrimeField;
///
/// let f5 = PrimeField::new(5)?;
/// assert_eq!(f5.add(3, 4), 2);
/// assert_eq!(f5.mul(3, 4), 2);
/// assert_eq!(f5.inv(3), Some(2)); // 3 * 2 = 6 = 1 (mod 5)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrimeField {
    p: u64,
}

impl PrimeField {
    /// Creates GF(p).
    ///
    /// # Errors
    ///
    /// Returns [`NotPrimeError`] if `p` is not prime or exceeds `2^31`
    /// (large orders would overflow intermediate products).
    pub fn new(p: u64) -> Result<Self, NotPrimeError> {
        if p > (1 << 31) || !is_prime(p) {
            return Err(NotPrimeError { order: p });
        }
        Ok(PrimeField { p })
    }

    /// The field order.
    pub fn order(self) -> u64 {
        self.p
    }

    /// Reduces an arbitrary value into the field.
    pub fn reduce(self, a: u64) -> u64 {
        a % self.p
    }

    /// Addition mod p.
    pub fn add(self, a: u64, b: u64) -> u64 {
        (a % self.p + b % self.p) % self.p
    }

    /// Subtraction mod p.
    pub fn sub(self, a: u64, b: u64) -> u64 {
        (a % self.p + self.p - b % self.p) % self.p
    }

    /// Negation mod p.
    pub fn neg(self, a: u64) -> u64 {
        (self.p - a % self.p) % self.p
    }

    /// Multiplication mod p.
    pub fn mul(self, a: u64, b: u64) -> u64 {
        (a % self.p) * (b % self.p) % self.p
    }

    /// Exponentiation mod p by repeated squaring.
    pub fn pow(self, mut base: u64, mut exp: u64) -> u64 {
        base %= self.p;
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse (`None` for zero), via Fermat's little theorem.
    pub fn inv(self, a: u64) -> Option<u64> {
        let a = a % self.p;
        if a == 0 {
            None
        } else {
            Some(self.pow(a, self.p - 2))
        }
    }

    /// Iterator over all field elements `0..p`.
    pub fn elements(self) -> impl Iterator<Item = u64> {
        0..self.p
    }
}

/// Deterministic primality test (trial division — orders are small).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n % 2 == 0 {
        return n == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= n {
        if n % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

/// The primes up to `limit`, in increasing order (used to pick projective
/// plane orders near a target size).
pub fn primes_up_to(limit: u64) -> Vec<u64> {
    (2..=limit).filter(|&n| is_prime(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_small_cases() {
        let primes: Vec<u64> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn rejects_composite_order() {
        assert!(PrimeField::new(9).is_err());
        assert!(PrimeField::new(1).is_err());
        assert!(PrimeField::new(0).is_err());
        let err = PrimeField::new(12).unwrap_err();
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn field_axioms_hold_in_f7() {
        let f = PrimeField::new(7).unwrap();
        for a in f.elements() {
            for b in f.elements() {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                assert_eq!(f.sub(f.add(a, b), b), a);
                for c in f.elements() {
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverses_multiply_to_one() {
        for p in [2u64, 3, 5, 13, 31] {
            let f = PrimeField::new(p).unwrap();
            assert_eq!(f.inv(0), None);
            for a in 1..p {
                let inv = f.inv(a).unwrap();
                assert_eq!(f.mul(a, inv), 1, "GF({p}): {a}^-1");
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = PrimeField::new(11).unwrap();
        for base in 0..11 {
            let mut acc = 1;
            for e in 0..8 {
                assert_eq!(f.pow(base, e), acc);
                acc = f.mul(acc, base);
            }
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let f = PrimeField::new(13).unwrap();
        for a in f.elements() {
            assert_eq!(f.add(a, f.neg(a)), 0);
        }
    }

    #[test]
    fn primes_list() {
        assert_eq!(primes_up_to(12), vec![2, 3, 5, 7, 11]);
    }
}
