//! High-girth graph generation by the Erdős deletion method.
//!
//! Projective planes only exist at girth 6 and special orders; for
//! arbitrary girth targets the experiments use the classic probabilistic
//! construction: sample `G(n, p)` with `p` tuned so the expected number of
//! short cycles is a small fraction of the edges, then delete one edge per
//! remaining short cycle. The result *deterministically* has girth above
//! the target (we verify, not hope) and `Ω(n^{1 + 1/(g−2)})` edges in
//! expectation.

use rand::Rng;
use spanner_graph::{cycles, generators, girth, subgraph, FaultMask, Graph};

/// Builds an `n`-vertex graph with girth strictly greater than
/// `girth_above`, using `G(n, p)` plus short-cycle deletion.
///
/// The density is chosen as `d = (n/4)^{1/(girth_above−1)}` expected degree,
/// which keeps the expected short-cycle count below half the edges; the
/// deletion pass then removes one edge per surviving short cycle. The
/// output girth is re-verified before returning.
///
/// # Panics
///
/// Panics if `girth_above < 3` (use the raw generators for that) or
/// `n == 0`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use spanner_extremal::high_girth::high_girth_graph;
/// use spanner_graph::{girth, FaultMask};
///
/// let mut rng = StdRng::seed_from_u64(11);
/// let g = high_girth_graph(60, 5, &mut rng);
/// let mask = FaultMask::for_graph(&g);
/// assert!(girth::has_girth_greater_than(&g, &mask, 5));
/// ```
pub fn high_girth_graph(n: usize, girth_above: usize, rng: &mut impl Rng) -> Graph {
    assert!(n > 0, "need at least one vertex");
    assert!(girth_above >= 3, "girth target below 4 is trivial");
    // Expected degree d with (n d^{g-1}) short-cycle estimate ≲ m/2:
    // d^{g-2} ≈ n/4, i.e. d = (n/4)^{1/(g-2)} with g = girth_above + 1.
    let g_target = girth_above + 1;
    let d = (n as f64 / 4.0)
        .powf(1.0 / (g_target as f64 - 2.0))
        .max(1.0);
    let p = (d / n as f64).min(1.0);
    let base = generators::erdos_renyi(n, p, rng);
    delete_short_cycles(&base, girth_above)
}

/// Deletes one edge from every cycle of at most `girth_above` edges,
/// returning a subgraph with girth strictly greater than `girth_above`.
///
/// Deterministic given the input graph (always deletes the first edge of
/// the first short cycle found).
pub fn delete_short_cycles(graph: &Graph, girth_above: usize) -> Graph {
    let mut mask = FaultMask::for_graph(graph);
    loop {
        let found = cycles::enumerate_short_cycles(graph, &mask, girth_above, 1);
        match found.cycles.first() {
            None => break,
            Some(cycle) => {
                mask.fault_edge(cycle.edges()[0]);
            }
        }
    }
    let kept = graph.edge_ids().filter(|e| !mask.is_edge_faulted(*e));
    let result = subgraph::edge_subgraph(graph, kept).graph;
    debug_assert!(girth::has_girth_greater_than(
        &result,
        &FaultMask::for_graph(&result),
        girth_above
    ));
    result
}

/// The densest girth-`> girth_above` graph this crate can construct on at
/// most `max_nodes` vertices, preferring exact extremal families:
///
/// * `girth_above == 3`: balanced complete bipartite (Mantel-extremal);
/// * `girth_above ∈ {4, 5}`: projective plane incidence graph when one
///   fits, else the deletion method;
/// * otherwise: the deletion method.
pub fn dense_high_girth(max_nodes: usize, girth_above: usize, rng: &mut impl Rng) -> Graph {
    assert!(max_nodes > 0);
    match girth_above {
        0..=3 => {
            let half = (max_nodes / 2).max(1);
            generators::complete_bipartite(half, max_nodes - half)
        }
        4 | 5 => match crate::projective::largest_order_fitting(max_nodes) {
            Some(q) => crate::projective::incidence_graph(q).expect("prime by construction"),
            None => high_girth_graph(max_nodes, girth_above, rng),
        },
        _ => high_girth_graph(max_nodes, girth_above, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deletion_enforces_girth() {
        let mut rng = StdRng::seed_from_u64(3);
        for girth_above in [3usize, 4, 6] {
            let g = high_girth_graph(50, girth_above, &mut rng);
            let mask = FaultMask::for_graph(&g);
            assert!(
                girth::has_girth_greater_than(&g, &mask, girth_above),
                "girth_above={girth_above}, girth={:?}",
                girth::girth(&g, &mask)
            );
        }
    }

    #[test]
    fn deletion_keeps_most_edges() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 120;
        let g = high_girth_graph(n, 4, &mut rng);
        // The probabilistic bound promises Ω(n^{1+1/3}) ≈ 4.9n edges before
        // constants; at the very least we should beat a spanning tree.
        assert!(
            g.edge_count() > n,
            "only {} edges on {n} nodes",
            g.edge_count()
        );
    }

    #[test]
    fn delete_short_cycles_on_already_good_graph_is_identity() {
        let c7 = generators::cycle(7);
        let out = delete_short_cycles(&c7, 6);
        assert_eq!(out.edge_count(), 7);
        let out = delete_short_cycles(&c7, 7);
        assert_eq!(out.edge_count(), 6, "the 7-cycle itself must be broken");
    }

    #[test]
    fn dense_high_girth_prefers_exact_families() {
        let mut rng = StdRng::seed_from_u64(5);
        // Triangle-free: complete bipartite.
        let g = dense_high_girth(10, 3, &mut rng);
        assert_eq!(g.edge_count(), 25);
        // Girth > 4 with space for PG(2,3): 26 nodes, 52 edges.
        let g = dense_high_girth(30, 4, &mut rng);
        assert_eq!(g.node_count(), 26);
        assert_eq!(g.edge_count(), 52);
    }

    #[test]
    fn dense_high_girth_falls_back_when_planes_do_not_fit() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = dense_high_girth(10, 5, &mut rng);
        let mask = FaultMask::for_graph(&g);
        assert!(girth::has_girth_greater_than(&g, &mask, 5));
        assert!(g.node_count() <= 10);
    }

    #[test]
    fn girth_verified_across_seeds() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = high_girth_graph(40, 6, &mut rng);
            let mask = FaultMask::for_graph(&g);
            assert!(girth::has_girth_greater_than(&g, &mask, 6), "seed {seed}");
        }
    }
}
