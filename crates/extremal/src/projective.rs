//! Projective planes `PG(2, q)` and their incidence graphs.
//!
//! The incidence graph of a projective plane of order `q` is bipartite
//! (points vs lines), `(q + 1)`-regular, has `2(q² + q + 1)` vertices,
//! `(q + 1)(q² + q + 1)` edges, girth 6, and diameter 3 — it *meets* the
//! Moore bound for girth > 4 (and > 5), making it the canonical extremal
//! base graph for the paper's lower-bound family at `k + 1 ∈ {5, 6}`.
//!
//! Points are the 1-dimensional subspaces of GF(q)³ and lines the
//! 2-dimensional ones; a point lies on a line when their representative
//! vectors are orthogonal. Only prime `q` is supported (see [`crate::gf`]).

use crate::gf::{NotPrimeError, PrimeField};
use spanner_graph::{Graph, NodeId, Weight};

/// A projective plane of prime order `q`, with explicit point and line
/// coordinates.
///
/// # Examples
///
/// ```
/// use spanner_extremal::projective::ProjectivePlane;
///
/// let fano = ProjectivePlane::new(2)?;
/// assert_eq!(fano.point_count(), 7);
/// assert_eq!(fano.line_count(), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProjectivePlane {
    field: PrimeField,
    /// Normalized homogeneous coordinates (first nonzero entry is 1).
    points: Vec<[u64; 3]>,
}

impl ProjectivePlane {
    /// Constructs `PG(2, q)` for prime `q`.
    ///
    /// # Errors
    ///
    /// Returns [`NotPrimeError`] when `q` is not a supported prime.
    pub fn new(q: u64) -> Result<Self, NotPrimeError> {
        let field = PrimeField::new(q)?;
        let mut points = Vec::with_capacity((q * q + q + 1) as usize);
        // Normalized representatives: (1, y, z), (0, 1, z), (0, 0, 1).
        for y in 0..q {
            for z in 0..q {
                points.push([1, y, z]);
            }
        }
        for z in 0..q {
            points.push([0, 1, z]);
        }
        points.push([0, 0, 1]);
        Ok(ProjectivePlane { field, points })
    }

    /// The plane order `q`.
    pub fn order(&self) -> u64 {
        self.field.order()
    }

    /// Number of points: `q² + q + 1`.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Number of lines (equal to the number of points by duality).
    pub fn line_count(&self) -> usize {
        self.points.len()
    }

    /// The normalized homogeneous coordinates of point `i`.
    pub fn point(&self, i: usize) -> [u64; 3] {
        self.points[i]
    }

    /// Whether point `p` is incident to line `l` (lines are indexed by the
    /// same normalized coordinates, acting as the dual plane): incidence is
    /// orthogonality `p · l = 0` over GF(q).
    pub fn incident(&self, p: usize, l: usize) -> bool {
        let a = self.points[p];
        let b = self.points[l];
        let f = self.field;
        let dot = f.add(
            f.add(f.mul(a[0], b[0]), f.mul(a[1], b[1])),
            f.mul(a[2], b[2]),
        );
        dot == 0
    }

    /// Builds the bipartite point–line incidence graph: vertices
    /// `0..point_count()` are points, `point_count()..2·point_count()` are
    /// lines.
    pub fn incidence_graph(&self) -> Graph {
        let n = self.point_count();
        let mut g = Graph::with_edge_capacity(2 * n, (self.order() as usize + 1) * n);
        for p in 0..n {
            for l in 0..n {
                if self.incident(p, l) {
                    g.add_edge_unchecked(NodeId::new(p), NodeId::new(n + l), Weight::UNIT);
                }
            }
        }
        g
    }
}

/// Convenience: the incidence graph of `PG(2, q)`.
///
/// # Errors
///
/// Returns [`NotPrimeError`] when `q` is not a supported prime.
///
/// # Examples
///
/// ```
/// use spanner_extremal::projective::incidence_graph;
///
/// // The Heawood graph: PG(2,2) incidence, 14 vertices, 21 edges, girth 6.
/// let heawood = incidence_graph(2)?;
/// assert_eq!(heawood.node_count(), 14);
/// assert_eq!(heawood.edge_count(), 21);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn incidence_graph(q: u64) -> Result<Graph, NotPrimeError> {
    Ok(ProjectivePlane::new(q)?.incidence_graph())
}

/// The Heawood graph — the (3,6)-cage, i.e. the smallest 3-regular graph of
/// girth 6 — as the incidence graph of the Fano plane `PG(2, 2)`.
pub fn heawood() -> Graph {
    incidence_graph(2).expect("2 is prime")
}

/// Picks the largest prime `q` such that the incidence graph of `PG(2, q)`
/// has at most `max_nodes` vertices; `None` if even `q = 2` is too big.
pub fn largest_order_fitting(max_nodes: usize) -> Option<u64> {
    let mut best = None;
    for q in crate::gf::primes_up_to(1 << 15) {
        let nodes = 2 * (q * q + q + 1);
        if nodes as usize <= max_nodes {
            best = Some(q);
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::{girth, FaultMask};

    #[test]
    fn point_counts() {
        for q in [2u64, 3, 5, 7] {
            let plane = ProjectivePlane::new(q).unwrap();
            assert_eq!(plane.point_count() as u64, q * q + q + 1, "q={q}");
        }
    }

    #[test]
    fn every_line_has_q_plus_one_points() {
        for q in [2u64, 3, 5] {
            let plane = ProjectivePlane::new(q).unwrap();
            for l in 0..plane.line_count() {
                let on_line = (0..plane.point_count())
                    .filter(|&p| plane.incident(p, l))
                    .count();
                assert_eq!(on_line as u64, q + 1, "q={q}, line {l}");
            }
        }
    }

    #[test]
    fn two_points_determine_one_line() {
        for q in [2u64, 3] {
            let plane = ProjectivePlane::new(q).unwrap();
            let n = plane.point_count();
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    let common = (0..n)
                        .filter(|&l| plane.incident(p1, l) && plane.incident(p2, l))
                        .count();
                    assert_eq!(common, 1, "q={q}: points {p1},{p2}");
                }
            }
        }
    }

    #[test]
    fn two_lines_meet_in_one_point() {
        let plane = ProjectivePlane::new(3).unwrap();
        let n = plane.line_count();
        for l1 in 0..n {
            for l2 in (l1 + 1)..n {
                let common = (0..n)
                    .filter(|&p| plane.incident(p, l1) && plane.incident(p, l2))
                    .count();
                assert_eq!(common, 1);
            }
        }
    }

    #[test]
    fn incidence_graph_is_regular_bipartite_girth_six() {
        for q in [2u64, 3, 5] {
            let g = incidence_graph(q).unwrap();
            let n = (q * q + q + 1) as usize;
            assert_eq!(g.node_count(), 2 * n);
            assert_eq!(g.edge_count() as u64, (q + 1) * n as u64);
            for v in g.nodes() {
                assert_eq!(g.degree(v) as u64, q + 1, "q={q}");
            }
            let mask = FaultMask::for_graph(&g);
            assert_eq!(girth::girth(&g, &mask), Some(6), "q={q}");
        }
    }

    #[test]
    fn heawood_is_the_three_six_cage() {
        let g = heawood();
        assert_eq!(g.node_count(), 14);
        assert_eq!(g.edge_count(), 21);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn largest_order_selection() {
        // q=2 -> 14 nodes, q=3 -> 26, q=5 -> 62, q=7 -> 114.
        assert_eq!(largest_order_fitting(13), None);
        assert_eq!(largest_order_fitting(14), Some(2));
        assert_eq!(largest_order_fitting(100), Some(5));
        assert_eq!(largest_order_fitting(200), Some(7));
    }
}
