//! The Bodwin–Patel / BDPW18 lower-bound family.
//!
//! The paper's closing remark describes the vertex-fault-tolerance lower
//! bound graph of BDPW18: combine "an arbitrary graph of girth > k+1 with
//! a biclique on ⌊f/2⌋ nodes" — i.e. *blow up* every base vertex into an
//! independent set of `t ≈ f/2` copies and every base edge into a complete
//! bipartite `K_{t,t}` between the copy sets. The result:
//!
//! * has `t² · |E(base)| = Ω(f² · b(n/f, k+1))` edges on `t · |V(base)|`
//!   vertices;
//! * every edge is *critical* for some fault set of `2(t−1) ≤ f` vertices
//!   ([`BlowUp::critical_fault_set`]), so every f-VFT k-spanner must keep
//!   essentially all of it — this is the tightness witness for Theorem 1;
//! * admits an **edge** `(k+1)`-blocking set of size `≤ f·|E|`
//!   ([`BlowUp::edge_blocking_set`]): all pairs of edges that share an
//!   endpoint and correspond to the same base edge. This is the paper's
//!   evidence that blocking sets alone cannot improve the EFT upper bound.
//!
//! Why the blocking set works: every product edge moves in the base
//! coordinate, so a cycle of length `L < girth(base)` projects to a closed
//! `L`-walk in the base, which must backtrack (a non-backtracking closed
//! walk would witness a base cycle of length ≤ L). The backtracking step is
//! two cyclically-consecutive product edges over the same base edge sharing
//! an endpoint — exactly a pair in the blocking set.

use spanner_graph::{EdgeId, Graph, NodeId};

/// A biclique blow-up of a base graph, with coordinate bookkeeping.
///
/// Product vertex `(b, x)` (base vertex `b`, copy `x ∈ 0..t`) has id
/// `b·t + x`. The `t²` copies of base edge `i` occupy the contiguous edge-id
/// block `i·t² .. (i+1)·t²` in `(x, y)`-lexicographic order.
///
/// # Examples
///
/// ```
/// use spanner_extremal::lower_bound::biclique_blowup;
/// use spanner_graph::generators::cycle;
///
/// let blow = biclique_blowup(&cycle(5), 3);
/// assert_eq!(blow.graph().node_count(), 15);
/// assert_eq!(blow.graph().edge_count(), 5 * 9);
/// ```
#[derive(Clone, Debug)]
pub struct BlowUp {
    graph: Graph,
    base: Graph,
    copies: usize,
}

impl BlowUp {
    /// The blown-up graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The base graph.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Copies per base vertex (`t`).
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Product vertex id of `(base_vertex, copy)`.
    ///
    /// # Panics
    ///
    /// Panics if `copy >= copies`.
    pub fn node(&self, base_vertex: NodeId, copy: usize) -> NodeId {
        assert!(copy < self.copies, "copy index out of range");
        NodeId::new(base_vertex.index() * self.copies + copy)
    }

    /// Splits a product vertex into `(base_vertex, copy)`.
    pub fn coordinates(&self, v: NodeId) -> (NodeId, usize) {
        (
            NodeId::new(v.index() / self.copies),
            v.index() % self.copies,
        )
    }

    /// The base edge a product edge corresponds to.
    pub fn base_edge_of(&self, e: EdgeId) -> EdgeId {
        EdgeId::new(e.index() / (self.copies * self.copies))
    }

    /// The product edge id for copy `(x, y)` of base edge `base_edge`
    /// (`x` on the `u`-side, `y` on the `v`-side of the base edge).
    pub fn product_edge(&self, base_edge: EdgeId, x: usize, y: usize) -> EdgeId {
        assert!(
            x < self.copies && y < self.copies,
            "copy index out of range"
        );
        EdgeId::new(base_edge.index() * self.copies * self.copies + x * self.copies + y)
    }

    /// The edge `(k+1)`-blocking set of the paper's remark: all pairs of
    /// distinct product edges that share an endpoint and correspond to the
    /// same base edge.
    ///
    /// Size: `|E(base)| · t² · (t − 1)`, which is at most `f · |E|` whenever
    /// `t − 1 ≤ f`.
    pub fn edge_blocking_set(&self) -> Vec<(EdgeId, EdgeId)> {
        let t = self.copies;
        let mut pairs = Vec::with_capacity(self.base.edge_count() * t * t * (t.saturating_sub(1)));
        for be in self.base.edge_ids() {
            // Shared endpoint on the u-side: same x, distinct y < y'.
            for x in 0..t {
                for y1 in 0..t {
                    for y2 in (y1 + 1)..t {
                        pairs.push((self.product_edge(be, x, y1), self.product_edge(be, x, y2)));
                    }
                }
            }
            // Shared endpoint on the v-side: same y, distinct x < x'.
            for y in 0..t {
                for x1 in 0..t {
                    for x2 in (x1 + 1)..t {
                        pairs.push((self.product_edge(be, x1, y), self.product_edge(be, x2, y)));
                    }
                }
            }
        }
        pairs
    }

    /// The vertex fault set that makes product edge `e` critical: all other
    /// copies of `e`'s endpoints (`2(t − 1)` vertices). After these faults,
    /// `e` is the unique surviving copy of its base edge, and any detour
    /// must follow a base walk of length at least `girth(base) − 1`.
    pub fn critical_fault_set(&self, e: EdgeId) -> Vec<NodeId> {
        let (u, v) = self.graph.endpoints(e);
        let (bu, x) = self.coordinates(u);
        let (bv, y) = self.coordinates(v);
        let mut faults = Vec::with_capacity(2 * (self.copies - 1));
        for c in 0..self.copies {
            if c != x {
                faults.push(self.node(bu, c));
            }
            if c != y {
                faults.push(self.node(bv, c));
            }
        }
        faults
    }

    /// Number of vertex faults [`BlowUp::critical_fault_set`] uses.
    pub fn criticality_budget(&self) -> usize {
        2 * (self.copies - 1)
    }
}

/// Blows up `base` with `t` copies per vertex (`t ≥ 1`).
///
/// Edge weights are inherited from the base edge by every copy.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn biclique_blowup(base: &Graph, t: usize) -> BlowUp {
    assert!(t >= 1, "need at least one copy per vertex");
    let mut graph = Graph::with_edge_capacity(base.node_count() * t, base.edge_count() * t * t);
    for (_, e) in base.edges() {
        for x in 0..t {
            for y in 0..t {
                graph.add_edge_unchecked(
                    NodeId::new(e.u().index() * t + x),
                    NodeId::new(e.v().index() * t + y),
                    e.weight(),
                );
            }
        }
    }
    BlowUp {
        graph,
        base: base.clone(),
        copies: t,
    }
}

/// The largest copy count whose criticality fault sets fit in a vertex
/// budget of `f`: `t = f/2 + 1`.
pub fn max_copies_for_fault_budget(f: usize) -> usize {
    f / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators::cycle;
    use spanner_graph::{girth, FaultMask};

    fn blow(n: usize, t: usize) -> BlowUp {
        biclique_blowup(&cycle(n), t)
    }

    #[test]
    fn counts_match_formula() {
        let b = blow(6, 3);
        assert_eq!(b.graph().node_count(), 18);
        assert_eq!(b.graph().edge_count(), 6 * 9);
        assert_eq!(b.copies(), 3);
    }

    #[test]
    fn coordinates_round_trip() {
        let b = blow(5, 4);
        for v in b.graph().nodes() {
            let (bv, c) = b.coordinates(v);
            assert_eq!(b.node(bv, c), v);
        }
    }

    #[test]
    fn edge_block_indexing_consistent() {
        let b = blow(5, 3);
        for e in b.graph().edge_ids() {
            let be = b.base_edge_of(e);
            let (u, v) = b.graph().endpoints(e);
            let (bu, x) = b.coordinates(u);
            let (bv, y) = b.coordinates(v);
            let (base_u, base_v) = b.base().endpoints(be);
            assert_eq!((bu, bv), (base_u, base_v));
            assert_eq!(b.product_edge(be, x, y), e);
        }
    }

    #[test]
    fn blocking_set_size_formula() {
        let b = blow(4, 3);
        let bs = b.edge_blocking_set();
        // |E(base)| * t^2 * (t-1) = 4 * 9 * 2 = 72.
        assert_eq!(bs.len(), 72);
        // All pairs distinct and same base edge, sharing an endpoint.
        for (e1, e2) in &bs {
            assert_ne!(e1, e2);
            assert_eq!(b.base_edge_of(*e1), b.base_edge_of(*e2));
            let (u1, v1) = b.graph().endpoints(*e1);
            let (u2, v2) = b.graph().endpoints(*e2);
            assert!(u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2);
        }
    }

    #[test]
    fn blocking_set_within_budget() {
        // t - 1 <= f must make |B| <= f |E|.
        let b = blow(5, 3);
        let f = b.copies() - 1 + 1; // any f >= t-1
        assert!(b.edge_blocking_set().len() <= f * b.graph().edge_count());
    }

    #[test]
    fn blocking_set_blocks_every_short_cycle() {
        use spanner_graph::cycles::enumerate_short_cycles;
        let base = cycle(7); // girth 7
        let b = biclique_blowup(&base, 2);
        let mask = FaultMask::for_graph(b.graph());
        // All cycles shorter than the base girth must be blocked.
        let short = enumerate_short_cycles(b.graph(), &mask, 6, 1_000_000);
        assert!(!short.truncated);
        assert!(!short.cycles.is_empty(), "blow-up should have short cycles");
        let bs = b.edge_blocking_set();
        for c in &short.cycles {
            let blocked = bs
                .iter()
                .any(|(e1, e2)| c.contains_edge(*e1) && c.contains_edge(*e2));
            assert!(blocked, "cycle of length {} unblocked", c.len());
        }
    }

    #[test]
    fn critical_fault_set_isolates_copy() {
        use spanner_graph::dijkstra;
        let base = cycle(8); // girth 8
        let b = biclique_blowup(&base, 3);
        let e = EdgeId::new(5);
        let faults = b.critical_fault_set(e);
        assert_eq!(faults.len(), b.criticality_budget());
        let mut mask = FaultMask::for_graph(b.graph());
        for v in &faults {
            mask.fault_vertex(*v);
        }
        // With e also removed, u-v distance is the long way around: 7 hops.
        mask.fault_edge(e);
        let (u, v) = b.graph().endpoints(e);
        let d = dijkstra::dist(b.graph(), u, v, &mask);
        assert_eq!(d.value(), Some(7));
    }

    #[test]
    fn single_copy_blowup_is_base() {
        let base = cycle(5);
        let b = biclique_blowup(&base, 1);
        assert_eq!(b.graph().node_count(), 5);
        assert_eq!(b.graph().edge_count(), 5);
        assert!(b.edge_blocking_set().is_empty());
        let mask = FaultMask::for_graph(b.graph());
        assert_eq!(girth::girth(b.graph(), &mask), Some(5));
    }

    #[test]
    fn budget_helpers() {
        assert_eq!(max_copies_for_fault_budget(0), 1);
        assert_eq!(max_copies_for_fault_budget(2), 2);
        assert_eq!(max_copies_for_fault_budget(5), 3);
        let b = blow(4, 3);
        assert_eq!(b.criticality_budget(), 4);
    }
}
