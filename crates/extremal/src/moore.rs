//! The Moore bounds and the closed-form size curves of the paper.
//!
//! `b(n, k)` denotes the maximum number of edges of an `n`-vertex graph with
//! girth greater than `k`. Asymptotically determining `b` is a famous open
//! problem; the folklore *Moore bounds* give
//! `b(n, k) = O(n^{1 + 1/⌊k/2⌋})`, and the Erdős girth conjecture posits
//! they are tight. All of the paper's size statements route through `b`:
//!
//! * **Theorem 1**: greedy output has `O(f² · b(n/f, k+1))` edges;
//! * **Corollary 2** (stretch `2k−1`, Moore plugged in):
//!   `O(n^{1+1/k} · f^{1−1/k})`;
//! * prior work BDPW18 proved the same shape with an extra `exp(k)`
//!   factor — the curve kept here for comparison plots.

/// Moore bound: an upper estimate of `b(n, k)`, the max edge count at girth
/// greater than `k`, as `n^{1 + 1/⌊k/2⌋}` (plus the trivial `n` term that
/// covers tree-like graphs at tiny `n`).
///
/// # Panics
///
/// Panics if `k < 2` (girth constraints below 3 are vacuous).
///
/// # Examples
///
/// ```
/// use spanner_extremal::moore::moore_bound;
///
/// // Girth > 3 (triangle-free): ~n^2 scale; girth > 5: ~n^{3/2}.
/// assert!(moore_bound(100.0, 3) > moore_bound(100.0, 5));
/// ```
pub fn moore_bound(n: f64, k: u64) -> f64 {
    assert!(k >= 2, "girth parameter must be at least 2");
    let exponent = 1.0 + 1.0 / ((k / 2) as f64);
    n.powf(exponent) + n
}

/// Theorem 1 curve: `f² · b(n/f, k+1)` with the Moore estimate for `b`.
///
/// For `f = 0` this degrades to the non-faulty greedy bound `b(n, k+1)`.
pub fn theorem1_bound(n: f64, f: u64, k: u64) -> f64 {
    let f_eff = f.max(1) as f64;
    (f_eff * f_eff) * moore_bound(n / f_eff, k + 1)
}

/// Corollary 2 curve for stretch `2k − 1`: `n^{1+1/k} · f^{1−1/k}`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn corollary2_bound(n: f64, f: u64, k: u64) -> f64 {
    assert!(k >= 1, "stretch parameter k must be positive");
    let kf = k as f64;
    let f_eff = f.max(1) as f64;
    n.powf(1.0 + 1.0 / kf) * f_eff.powf(1.0 - 1.0 / kf)
}

/// The prior state of the art BDPW18 for stretch `2k − 1`:
/// `exp(k) · n^{1+1/k} · f^{1−1/k}` (the paper's Corollary 2 removes the
/// `exp(k)` factor).
pub fn bdpw18_bound(n: f64, f: u64, k: u64) -> f64 {
    (k as f64).exp() * corollary2_bound(n, f, k)
}

/// A Dinitz–Krauthgamer-style bound for the random-subset baseline at
/// stretch `2k − 1`: `f^{2−1/k} · n^{1+1/k} · ln n` (the form our
/// re-derived baseline construction provably achieves; see
/// `spanner_core::baselines::dk`).
pub fn dk_baseline_bound(n: f64, f: u64, k: u64) -> f64 {
    assert!(k >= 1, "stretch parameter k must be positive");
    let kf = k as f64;
    let f_eff = f.max(1) as f64;
    f_eff.powf(2.0 - 1.0 / kf) * n.powf(1.0 + 1.0 / kf) * n.max(2.0).ln()
}

/// The trivial bound: keep every edge, at most `n(n−1)/2`.
pub fn trivial_bound(n: f64) -> f64 {
    n * (n - 1.0) / 2.0
}

/// Exact extremal values `b(n, 3)` (triangle-free): `⌊n²/4⌋`
/// (Mantel/Turán), achieved by the balanced complete bipartite graph.
pub fn exact_triangle_free(n: u64) -> u64 {
    n * n / 4
}

/// Edge count of the projective-plane incidence construction at girth 6:
/// `(q + 1)(q² + q + 1)` on `2(q² + q + 1)` vertices — matches the Moore
/// bound `Θ(n^{3/2})` for girth > 5 (equivalently > 4).
pub fn projective_plane_edges(q: u64) -> u64 {
    (q + 1) * (q * q + q + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moore_exponents() {
        // k = 3 (girth > 3): exponent 2.
        let n = 1000.0;
        let b3 = moore_bound(n, 3);
        assert!((b3 - (n * n + n)).abs() < 1e-6);
        // k = 5 (girth > 5): exponent 3/2.
        let b5 = moore_bound(n, 5);
        assert!((b5 - (n.powf(1.5) + n)).abs() < 1e-6);
        // k = 4 behaves like k = 5 up to the floor.
        assert!((moore_bound(n, 4) - b3).abs() < 1e-6 || moore_bound(n, 4) < b3);
    }

    #[test]
    fn moore_monotone_decreasing_in_k() {
        let n = 500.0;
        for k in 3..12 {
            assert!(moore_bound(n, k) >= moore_bound(n, k + 1) - 1e-9, "k={k}");
        }
    }

    #[test]
    fn theorem1_reduces_to_moore_at_f1() {
        let n = 200.0;
        let k = 5;
        assert!((theorem1_bound(n, 1, k) - moore_bound(n, k + 1)).abs() < 1e-6);
    }

    #[test]
    fn corollary2_grows_sublinearly_in_f() {
        let n = 1000.0;
        let k = 3;
        let b1 = corollary2_bound(n, 1, k);
        let b8 = corollary2_bound(n, 8, k);
        // f^{1 - 1/3} = f^{2/3}: 8x faults -> 4x edges.
        assert!((b8 / b1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bdpw18_is_exp_k_larger() {
        let n = 500.0;
        for k in 1..6 {
            let ratio = bdpw18_bound(n, 3, k) / corollary2_bound(n, 3, k);
            assert!((ratio - (k as f64).exp()).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_triangle_free_matches_mantel() {
        assert_eq!(exact_triangle_free(4), 4);
        assert_eq!(exact_triangle_free(5), 6);
        assert_eq!(exact_triangle_free(10), 25);
    }

    #[test]
    fn projective_plane_edge_formula() {
        // Fano plane: q=2, 7 points, 7 lines, 21 incidences.
        assert_eq!(projective_plane_edges(2), 21);
        assert_eq!(projective_plane_edges(3), 52);
    }

    #[test]
    fn trivial_bound_is_choose_two() {
        assert_eq!(trivial_bound(10.0), 45.0);
    }

    #[test]
    fn dk_bound_above_corollary2() {
        // The baseline curve should dominate the greedy curve.
        let (n, f, k) = (2000.0, 4, 3);
        assert!(dk_baseline_bound(n, f, k) > corollary2_bound(n, f, k));
    }
}
