//! Extremal girth machinery for the `vft-spanner` workspace.
//!
//! Bodwin–Patel's Theorem 1 expresses fault tolerant spanner sizes through
//! the extremal function `b(n, k)` — the maximum edge count of an
//! `n`-vertex graph of girth above `k`. This crate supplies both sides of
//! that coin:
//!
//! * **Curves** ([`moore`]): the Moore upper bounds and the closed-form
//!   size bounds of the paper (Theorem 1, Corollary 2) and of prior work
//!   (BDPW18, DK11) used as reference series by the experiments.
//! * **Witnesses**: graphs that come close to those bounds —
//!   complete bipartite graphs (triangle-free extremal), projective plane
//!   incidence graphs ([`projective`], girth 6, Moore-tight), and the
//!   probabilistic deletion method ([`high_girth`]) for any girth target.
//! * **The lower-bound family** ([`lower_bound`]): the biclique blow-up
//!   from the paper's closing remark, with its edge blocking set and the
//!   per-edge critical fault sets that make it incompressible for VFT
//!   spanners.
//!
//! # Example
//!
//! ```
//! use spanner_extremal::{lower_bound::biclique_blowup, projective};
//!
//! // A Moore-tight girth-6 base, blown up for fault budget f = 4.
//! let base = projective::heawood();
//! let t = spanner_extremal::lower_bound::max_copies_for_fault_budget(4);
//! let family = biclique_blowup(&base, t);
//! assert_eq!(family.graph().edge_count(), base.edge_count() * t * t);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf;
pub mod high_girth;
pub mod lower_bound;
pub mod moore;
pub mod projective;
