//! Property tests for transforms, APSP, serialization, and generators.

use proptest::prelude::*;
use spanner_graph::{apsp, io, transform, FaultMask, Graph, NodeId, Weight};

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 5 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complement_partitions_the_pairs(g in arb_graph(10, 1)) {
        let c = transform::complement(&g);
        let n = g.node_count();
        prop_assert_eq!(g.edge_count() + c.edge_count(), n * (n - 1) / 2);
        for (_, e) in g.edges() {
            prop_assert!(c.contains_edge(e.u(), e.v()).is_none());
        }
    }

    #[test]
    fn edge_list_round_trips_exactly(g in arb_graph(9, 9)) {
        let text = io::to_edge_list(&g);
        let back = io::from_edge_list(&text).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for (id, e) in g.edges() {
            let (u, v) = back.endpoints(id);
            prop_assert_eq!((u, v), (e.u(), e.v()));
            prop_assert_eq!(back.weight(id), e.weight());
        }
    }

    #[test]
    fn johnson_equals_floyd_warshall(g in arb_graph(9, 6)) {
        let mask = FaultMask::for_graph(&g);
        prop_assert_eq!(apsp::johnson(&g, &mask), apsp::floyd_warshall(&g, &mask));
    }

    #[test]
    fn johnson_equals_floyd_warshall_under_faults(
        g in arb_graph(8, 4),
        fault in any::<u32>(),
    ) {
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(fault as usize % g.node_count()));
        prop_assert_eq!(apsp::johnson(&g, &mask), apsp::floyd_warshall(&g, &mask));
    }

    #[test]
    fn relabel_by_rotation_preserves_degrees(g in arb_graph(8, 3), shift in 0usize..8) {
        let n = g.node_count();
        let perm: Vec<NodeId> = (0..n).map(|i| NodeId::new((i + shift) % n)).collect();
        let r = transform::relabel(&g, &perm);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), r.degree(perm[v.index()]));
        }
        prop_assert_eq!(r.edge_count(), g.edge_count());
    }

    #[test]
    fn compact_preserves_surviving_structure(
        g in arb_graph(9, 3),
        faults in proptest::collection::vec(any::<u32>(), 0..3),
    ) {
        let mut mask = FaultMask::for_graph(&g);
        for f in &faults {
            mask.fault_vertex(NodeId::new(*f as usize % g.node_count()));
        }
        let (c, kept) = transform::compact(&g, &mask);
        prop_assert_eq!(c.node_count(), kept.len());
        // Edge count: edges with both endpoints alive.
        let expected = g
            .edges()
            .filter(|(_, e)| {
                !mask.is_vertex_faulted(e.u()) && !mask.is_vertex_faulted(e.v())
            })
            .count();
        prop_assert_eq!(c.edge_count(), expected);
        // Degrees map over.
        for (new_id, old_id) in kept.iter().enumerate() {
            let alive_degree = g
                .neighbors(*old_id)
                .filter(|(to, eid)| mask.allows(*to, *eid))
                .count();
            prop_assert_eq!(c.degree(NodeId::new(new_id)), alive_degree);
        }
    }

    #[test]
    fn disjoint_union_is_structure_sum(a in arb_graph(6, 3), b in arb_graph(6, 3)) {
        let u = transform::disjoint_union(&a, &b);
        prop_assert_eq!(u.node_count(), a.node_count() + b.node_count());
        prop_assert_eq!(u.edge_count(), a.edge_count() + b.edge_count());
        let mask = FaultMask::for_graph(&u);
        let (_, components) = spanner_graph::bfs::connected_components(&u, &mask);
        let mask_a = FaultMask::for_graph(&a);
        let (_, ca) = spanner_graph::bfs::connected_components(&a, &mask_a);
        let mask_b = FaultMask::for_graph(&b);
        let (_, cb) = spanner_graph::bfs::connected_components(&b, &mask_b);
        prop_assert_eq!(components, ca + cb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn watts_strogatz_keeps_edge_budget(
        n in 8usize..40,
        half_k in 1usize..3,
        beta in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let k = 2 * half_k;
        prop_assume!(k < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = spanner_graph::generators::watts_strogatz(n, k, beta, &mut rng);
        prop_assert_eq!(g.edge_count(), n * k / 2);
        // Simple graph invariants hold (no duplicate edges) by adjacency scan.
        for v in g.nodes() {
            let mut neighbors: Vec<NodeId> = g.neighbors(v).map(|(to, _)| to).collect();
            let len = neighbors.len();
            neighbors.sort();
            neighbors.dedup();
            prop_assert_eq!(neighbors.len(), len, "duplicate edge at {}", v);
        }
    }
}
