//! Property tests for flow-based connectivity against brute-force cuts.
//!
//! Menger's theorem is the specification: the flow value must equal the
//! minimum cut, which on small graphs we can find by exhaustive subset
//! enumeration. MST is checked against brute-force spanning subgraphs.

use proptest::prelude::*;
use spanner_graph::{bfs, connectivity, mst, EdgeId, FaultMask, Graph, NodeId, Weight};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        proptest::collection::vec(0..10u32, m).prop_map(move |keep| {
            let mut g = Graph::new(n);
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if keep[i] < 6 {
                    g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
                }
            }
            g
        })
    })
}

/// Brute-force minimum s-t edge cut: smallest edge subset whose removal
/// disconnects s from t.
fn brute_min_edge_cut(g: &Graph, s: NodeId, t: NodeId) -> u32 {
    let m = g.edge_count();
    // Check by increasing cut size so the first hit is minimal.
    for size in 0..=m {
        if try_edge_subsets(g, s, t, 0, size, &mut Vec::new()) {
            return size as u32;
        }
    }
    m as u32
}

fn try_edge_subsets(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    from: usize,
    remaining: usize,
    chosen: &mut Vec<usize>,
) -> bool {
    if remaining == 0 {
        let mut mask = FaultMask::for_graph(g);
        for e in chosen.iter() {
            mask.fault_edge(EdgeId::new(*e));
        }
        let hops = bfs::hop_distances(g, s, &mask);
        return hops[t.index()] == u32::MAX;
    }
    for i in from..g.edge_count() {
        chosen.push(i);
        if try_edge_subsets(g, s, t, i + 1, remaining - 1, chosen) {
            chosen.pop();
            return true;
        }
        chosen.pop();
    }
    false
}

/// Brute-force minimum s-t vertex cut (interior vertices only); `None`
/// when s and t are adjacent.
fn brute_min_vertex_cut(g: &Graph, s: NodeId, t: NodeId) -> Option<u32> {
    if g.contains_edge(s, t).is_some() {
        return None;
    }
    let candidates: Vec<NodeId> = g.nodes().filter(|v| *v != s && *v != t).collect();
    for size in 0..=candidates.len() {
        if try_vertex_subsets(g, s, t, &candidates, 0, size, &mut Vec::new()) {
            return Some(size as u32);
        }
    }
    Some(candidates.len() as u32)
}

#[allow(clippy::too_many_arguments)]
fn try_vertex_subsets(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    candidates: &[NodeId],
    from: usize,
    remaining: usize,
    chosen: &mut Vec<NodeId>,
) -> bool {
    if remaining == 0 {
        let mut mask = FaultMask::for_graph(g);
        for v in chosen.iter() {
            mask.fault_vertex(*v);
        }
        let hops = bfs::hop_distances(g, s, &mask);
        return hops[t.index()] == u32::MAX;
    }
    for i in from..candidates.len() {
        chosen.push(candidates[i]);
        if try_vertex_subsets(g, s, t, candidates, i + 1, remaining - 1, chosen) {
            chosen.pop();
            return true;
        }
        chosen.pop();
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn edge_connectivity_matches_brute_force(g in arb_graph(6)) {
        let mask = FaultMask::for_graph(&g);
        let s = NodeId::new(0);
        let t = NodeId::new(g.node_count() - 1);
        let flow = connectivity::edge_connectivity_st(&g, &mask, s, t, u32::MAX);
        let brute = brute_min_edge_cut(&g, s, t);
        prop_assert_eq!(flow, brute);
    }

    #[test]
    fn vertex_connectivity_matches_brute_force(g in arb_graph(6)) {
        let mask = FaultMask::for_graph(&g);
        let s = NodeId::new(0);
        let t = NodeId::new(g.node_count() - 1);
        let flow = connectivity::vertex_connectivity_st(&g, &mask, s, t, u32::MAX);
        let brute = brute_min_vertex_cut(&g, s, t);
        prop_assert_eq!(flow, brute);
    }

    #[test]
    fn global_vertex_connectivity_bounded_by_min_degree(g in arb_graph(7)) {
        let mask = FaultMask::for_graph(&g);
        let kappa = connectivity::vertex_connectivity(&g, &mask);
        let min_degree = g.nodes().map(|v| g.degree(v)).min().unwrap_or(0) as u32;
        prop_assert!(kappa <= min_degree);
        // And k-connectivity is consistent with kappa.
        prop_assert!(connectivity::is_k_vertex_connected(&g, &mask, kappa));
        prop_assert!(!connectivity::is_k_vertex_connected(&g, &mask, kappa + 1)
            || kappa + 1 > g.node_count() as u32 - 1);
    }

    #[test]
    fn mst_is_minimum_over_connected_subgraphs(
        edges in proptest::collection::vec((0usize..5, 0usize..5, 1u64..8), 4..9),
    ) {
        // Build a small weighted graph, skipping loops/duplicates.
        let mut g = Graph::new(5);
        for (u, v, w) in edges {
            if u != v && g.contains_edge(NodeId::new(u), NodeId::new(v)).is_none() {
                g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::new(w).unwrap());
            }
        }
        let mask = FaultMask::for_graph(&g);
        let forest = mst::minimum_spanning_forest(&g, &mask);
        // Brute force: the forest weight must be minimal among all edge
        // subsets with the same connectivity structure. We verify the cut
        // property instead (equivalent, cheaper): every non-forest edge
        // closes a cycle where it is a maximum-weight edge.
        let m = g.edge_count();
        prop_assume!(m >= 1);
        let in_forest: std::collections::HashSet<_> = forest.edges.iter().copied().collect();
        for e in g.edge_ids().filter(|e| !in_forest.contains(e)) {
            // Path in forest between endpoints must exist and use only
            // edges of weight <= w(e).
            let sub = spanner_graph::subgraph::edge_subgraph(&g, forest.edges.iter().copied());
            let (u, v) = g.endpoints(e);
            let path = spanner_graph::dijkstra::dist(
                &sub.graph, u, v, &FaultMask::for_graph(&sub.graph));
            prop_assert!(path.is_finite(), "forest must connect endpoints of skipped edges");
            // Max edge weight on the forest path <= w(e): verified via the
            // bottleneck check below.
            let heavy_ok = forest_path_max_weight(&sub.graph, u, v) <= g.weight(e).get();
            prop_assert!(heavy_ok, "cycle property violated at {e}");
        }
    }
}

/// Max edge weight on the unique forest path between u and v.
fn forest_path_max_weight(forest: &Graph, u: NodeId, v: NodeId) -> u64 {
    // DFS from u to v tracking the max weight.
    fn dfs(
        g: &Graph,
        cur: NodeId,
        target: NodeId,
        prev: Option<EdgeId>,
        max_w: u64,
    ) -> Option<u64> {
        if cur == target {
            return Some(max_w);
        }
        for (to, eid) in g.neighbors(cur) {
            if Some(eid) == prev {
                continue;
            }
            if let Some(found) = dfs(g, to, target, Some(eid), max_w.max(g.weight(eid).get())) {
                return Some(found);
            }
        }
        None
    }
    dfs(forest, u, v, None, 0).expect("connected in forest")
}
