//! Property-based tests for the graph substrate.
//!
//! The central comparisons: Dijkstra against a Floyd–Warshall reference
//! (including under fault masks), girth against brute-force short-cycle
//! enumeration, and the container types against std models.

use proptest::prelude::*;
use spanner_graph::{
    bfs, cycles, dijkstra, girth, subgraph, BitSet, Dist, EdgeId, FaultMask, Graph, NodeId, Weight,
};

/// A random simple weighted graph on up to `max_n` vertices, as an edge list.
fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(any::<bool>(), m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

/// Floyd–Warshall all-pairs distances over `graph ∖ mask`.
fn floyd_warshall(graph: &Graph, mask: &FaultMask) -> Vec<Vec<Dist>> {
    let n = graph.node_count();
    let mut d = vec![vec![Dist::INFINITE; n]; n];
    for (v, row) in d.iter_mut().enumerate() {
        if !mask.is_vertex_faulted(NodeId::new(v)) {
            row[v] = Dist::ZERO;
        }
    }
    for (id, e) in graph.edges() {
        if mask.is_edge_faulted(id)
            || mask.is_vertex_faulted(e.u())
            || mask.is_vertex_faulted(e.v())
        {
            continue;
        }
        let (u, v) = (e.u().index(), e.v().index());
        let w = e.weight().to_dist();
        if w < d[u][v] {
            d[u][v] = w;
            d[v][u] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if !d[i][k].is_finite() {
                continue;
            }
            for j in 0..n {
                let through = d[i][k] + d[k][j];
                if through < d[i][j] {
                    d[i][j] = through;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_floyd_warshall(g in arb_graph(9, 8)) {
        let mask = FaultMask::for_graph(&g);
        let reference = floyd_warshall(&g, &mask);
        let mut engine = dijkstra::DijkstraEngine::new();
        for s in g.nodes() {
            let dist = engine.sssp(&g, s, &mask);
            for t in g.nodes() {
                prop_assert_eq!(dist[t.index()], reference[s.index()][t.index()],
                    "dist({}, {})", s, t);
            }
        }
    }

    #[test]
    fn dijkstra_matches_floyd_warshall_under_faults(
        g in arb_graph(8, 5),
        fault_choices in proptest::collection::vec(any::<u32>(), 3),
    ) {
        let mut mask = FaultMask::for_graph(&g);
        // Fault up to 3 arbitrary vertices/edges chosen by the raw values.
        for (i, c) in fault_choices.iter().enumerate() {
            if i % 2 == 0 && g.node_count() > 0 {
                mask.fault_vertex(NodeId::new((*c as usize) % g.node_count()));
            } else if g.edge_count() > 0 {
                mask.fault_edge(EdgeId::new((*c as usize) % g.edge_count()));
            }
        }
        let reference = floyd_warshall(&g, &mask);
        let mut engine = dijkstra::DijkstraEngine::new();
        for s in g.nodes() {
            if mask.is_vertex_faulted(s) { continue; }
            let dist = engine.sssp(&g, s, &mask);
            for t in g.nodes() {
                if mask.is_vertex_faulted(t) { continue; }
                prop_assert_eq!(dist[t.index()], reference[s.index()][t.index()]);
            }
        }
    }

    #[test]
    fn bounded_dijkstra_agrees_with_unbounded(g in arb_graph(8, 6), bound in 0u64..30) {
        let mask = FaultMask::for_graph(&g);
        let mut engine = dijkstra::DijkstraEngine::new();
        let bound = Dist::finite(bound);
        for s in g.nodes() {
            for t in g.nodes() {
                let full = dijkstra::dist(&g, s, t, &mask);
                let bounded = engine.dist_bounded(&g, s, t, bound, &mask);
                if full.is_finite() && full <= bound {
                    prop_assert_eq!(bounded, Some(full));
                } else {
                    prop_assert_eq!(bounded, None);
                }
            }
        }
    }

    #[test]
    fn shortest_path_is_consistent(g in arb_graph(8, 6)) {
        let mask = FaultMask::for_graph(&g);
        let mut engine = dijkstra::DijkstraEngine::new();
        for s in g.nodes() {
            for t in g.nodes() {
                if let Some(p) = engine.shortest_path_bounded(&g, s, t, Dist::INFINITE, &mask) {
                    // Endpoints correct.
                    prop_assert_eq!(*p.nodes.first().unwrap(), s);
                    prop_assert_eq!(*p.nodes.last().unwrap(), t);
                    // Edge weights sum to the distance.
                    let total: Dist = p.edges.iter().map(|e| g.weight(*e).to_dist()).sum();
                    prop_assert_eq!(total, p.dist);
                    // Consecutive nodes joined by the listed edges.
                    for i in 0..p.edges.len() {
                        let (a, b) = g.endpoints(p.edges[i]);
                        let (x, y) = (p.nodes[i], p.nodes[i + 1]);
                        prop_assert!((a, b) == (x, y) || (a, b) == (y, x));
                    }
                    // No repeated vertices (paths are simple).
                    let mut sorted = p.nodes.clone();
                    sorted.sort();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), p.nodes.len());
                }
            }
        }
    }

    #[test]
    fn girth_matches_cycle_enumeration(g in arb_graph(8, 1)) {
        let mask = FaultMask::for_graph(&g);
        let by_girth = girth::girth(&g, &mask);
        let all = cycles::enumerate_short_cycles(&g, &mask, g.node_count(), 1_000_000);
        prop_assert!(!all.truncated);
        let by_enum = all.cycles.iter().map(|c| c.len()).min();
        prop_assert_eq!(by_girth, by_enum);
    }

    #[test]
    fn bfs_hops_equal_dijkstra_on_unit_weights(g in arb_graph(9, 1)) {
        let mask = FaultMask::for_graph(&g);
        let mut engine = dijkstra::DijkstraEngine::new();
        for s in g.nodes() {
            let hops = bfs::hop_distances(&g, s, &mask);
            let dist = engine.sssp(&g, s, &mask);
            for t in g.nodes() {
                match dist[t.index()].value() {
                    Some(d) => prop_assert_eq!(hops[t.index()] as u64, d),
                    None => prop_assert_eq!(hops[t.index()], u32::MAX),
                }
            }
        }
    }

    #[test]
    fn induced_subgraph_edges_are_exactly_inherited(
        g in arb_graph(9, 5),
        selector in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let kept: Vec<NodeId> = g
            .nodes()
            .filter(|v| selector.get(v.index()).copied().unwrap_or(false))
            .collect();
        let ind = subgraph::induced(&g, kept.iter().copied());
        // Every subgraph edge maps to a parent edge with the same weight and
        // mapped endpoints.
        for (eid, e) in ind.graph.edges() {
            let parent_edge = g.edge(ind.parent_edge(eid));
            prop_assert_eq!(parent_edge.weight(), e.weight());
            let pu = ind.parent_node(e.u());
            let pv = ind.parent_node(e.v());
            prop_assert!(
                (parent_edge.u(), parent_edge.v()) == (pu, pv)
                    || (parent_edge.u(), parent_edge.v()) == (pv, pu)
            );
        }
        // Counting: parent edges with both endpoints kept == subgraph edges.
        let expected = g
            .edges()
            .filter(|(_, e)| {
                ind.child_node(e.u()).is_some() && ind.child_node(e.v()).is_some()
            })
            .count();
        prop_assert_eq!(ind.graph.edge_count(), expected);
    }

    #[test]
    fn bitset_behaves_like_hashset(ops in proptest::collection::vec((0usize..128, any::<bool>()), 0..200)) {
        let mut bs = BitSet::new(128);
        let mut hs = std::collections::HashSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), hs.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), hs.remove(&v));
            }
        }
        prop_assert_eq!(bs.len(), hs.len());
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_hs.sort();
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), from_hs);
    }

    #[test]
    fn components_partition_vertices(g in arb_graph(10, 3)) {
        let mask = FaultMask::for_graph(&g);
        let (comp, count) = bfs::connected_components(&g, &mask);
        // Every vertex has a component below count.
        for v in g.nodes() {
            prop_assert!(comp[v.index()] < count);
        }
        // Edge endpoints share components.
        for (_, e) in g.edges() {
            prop_assert_eq!(comp[e.u().index()], comp[e.v().index()]);
        }
    }
}
