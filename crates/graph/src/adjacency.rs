//! The [`GraphView`] abstraction: one adjacency contract, many layouts.
//!
//! The FT-greedy oracle loop issues up to `O(k^f)` bounded Dijkstras per
//! candidate edge, and the structure those Dijkstras traverse changes as
//! the spanner grows. [`Graph`](crate::Graph) is the growable
//! Vec-of-Vec representation; [`IncrementalCsr`](crate::IncrementalCsr)
//! is the cache-friendly flat layout the hot path prefers. Algorithms
//! that only *read* adjacency ([`DijkstraEngine`](crate::DijkstraEngine),
//! the min-cut shortcuts in [`connectivity`](crate::connectivity)) are
//! generic over this trait, so both layouts run through identical —
//! monomorphized, allocation-free — code paths.
//!
//! # Determinism contract
//!
//! Implementations must present each vertex's neighbors **in increasing
//! edge-id order** (which for [`Graph`] equals insertion order). Greedy
//! spanner outputs depend on shortest-path tie-breaks, which depend on
//! neighbor iteration order; the equivalence property tests between the
//! adjacency-list and CSR paths rely on this contract.

use crate::{EdgeId, NodeId, Weight};

/// Read-only access to an undirected weighted graph's adjacency.
///
/// See the module docs for the ordering contract. The trait is not
/// object-safe ([`GraphView::for_each_neighbor`] is generic) by design:
/// the hot loops that use it must monomorphize.
pub trait GraphView {
    /// Number of vertices (ids are dense in `0..node_count()`).
    fn node_count(&self) -> usize;

    /// Number of undirected edges (ids are dense in `0..edge_count()`).
    fn edge_count(&self) -> usize;

    /// Endpoints of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId);

    /// Weight of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    fn edge_weight(&self, edge: EdgeId) -> Weight;

    /// Calls `f` for every `(neighbor, via-edge, weight)` incident to
    /// `node`, in increasing edge-id order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn for_each_neighbor(&self, node: NodeId, f: impl FnMut(NodeId, EdgeId, Weight));

    /// Looks up the edge joining `u` and `v`, if any (graphs are simple,
    /// so it is unique).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let mut found = None;
        self.for_each_neighbor(u, |to, eid, _| {
            if to == v && found.is_none() {
                found = Some(eid);
            }
        });
        found
    }
}

impl GraphView for crate::Graph {
    #[inline]
    fn node_count(&self) -> usize {
        crate::Graph::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        crate::Graph::edge_count(self)
    }

    #[inline]
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        self.endpoints(edge)
    }

    #[inline]
    fn edge_weight(&self, edge: EdgeId) -> Weight {
        self.weight(edge)
    }

    #[inline]
    fn for_each_neighbor(&self, node: NodeId, mut f: impl FnMut(NodeId, EdgeId, Weight)) {
        for (to, eid) in self.neighbors(node) {
            f(to, eid, self.weight(eid));
        }
    }

    #[inline]
    fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.contains_edge(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Graph};

    fn collect<V: GraphView>(view: &V, v: NodeId) -> Vec<(NodeId, EdgeId, Weight)> {
        let mut out = Vec::new();
        view.for_each_neighbor(v, |n, e, w| out.push((n, e, w)));
        out
    }

    #[test]
    fn graph_impl_matches_inherent_methods() {
        let g = generators::petersen();
        assert_eq!(GraphView::node_count(&g), g.node_count());
        assert_eq!(GraphView::edge_count(&g), g.edge_count());
        for v in g.nodes() {
            let via_trait: Vec<(NodeId, EdgeId)> =
                collect(&g, v).into_iter().map(|(n, e, _)| (n, e)).collect();
            let direct: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            assert_eq!(via_trait, direct);
        }
        for (id, e) in g.edges() {
            assert_eq!(GraphView::edge_endpoints(&g, id), e.endpoints());
            assert_eq!(GraphView::edge_weight(&g, id), e.weight());
        }
    }

    #[test]
    fn neighbor_order_is_edge_id_order() {
        // The determinism contract: per-node lists sorted by edge id.
        let g = Graph::from_edges(4, [(0, 1), (2, 0), (0, 3), (1, 2)]).unwrap();
        for v in g.nodes() {
            let eids: Vec<EdgeId> = collect(&g, v).into_iter().map(|(_, e, _)| e).collect();
            let mut sorted = eids.clone();
            sorted.sort();
            assert_eq!(eids, sorted, "neighbors of {v} not in edge-id order");
        }
    }

    #[test]
    fn default_find_edge_agrees_with_contains_edge() {
        struct Wrapper<'a>(&'a Graph);
        impl GraphView for Wrapper<'_> {
            fn node_count(&self) -> usize {
                GraphView::node_count(self.0)
            }
            fn edge_count(&self) -> usize {
                GraphView::edge_count(self.0)
            }
            fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
                GraphView::edge_endpoints(self.0, edge)
            }
            fn edge_weight(&self, edge: EdgeId) -> Weight {
                GraphView::edge_weight(self.0, edge)
            }
            fn for_each_neighbor(&self, node: NodeId, f: impl FnMut(NodeId, EdgeId, Weight)) {
                self.0.for_each_neighbor(node, f);
            }
        }
        let g = generators::grid(3, 3);
        let w = Wrapper(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                assert_eq!(w.find_edge(u, v), g.contains_edge(u, v));
            }
        }
    }
}
