//! Breadth-first search utilities (hop distances, connectivity).
//!
//! Girth computation and several generators only care about *edge counts*,
//! not weights; BFS is the right tool there and is noticeably faster than
//! Dijkstra on the unit-weight graphs most experiments use.

use crate::{FaultMask, Graph, NodeId};
use std::collections::VecDeque;

/// Hop distance (number of edges) from `src` to every vertex in
/// `graph ∖ mask`; `u32::MAX` marks unreachable vertices.
///
/// # Examples
///
/// ```
/// use spanner_graph::{bfs, FaultMask, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let mask = FaultMask::for_graph(&g);
/// let hops = bfs::hop_distances(&g, NodeId::new(0), &mask);
/// assert_eq!(hops, vec![0, 1, 2, 3]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn hop_distances(graph: &Graph, src: NodeId, mask: &FaultMask) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.node_count()];
    if mask.is_vertex_faulted(src) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (to, eid) in graph.neighbors(v) {
            if mask.allows(to, eid) && dist[to.index()] == u32::MAX {
                dist[to.index()] = dv + 1;
                queue.push_back(to);
            }
        }
    }
    dist
}

/// Connected components of `graph ∖ mask`.
///
/// Returns `(component_id_per_vertex, component_count)`. Faulted vertices
/// get component id `usize::MAX` and do not count as components.
pub fn connected_components(graph: &Graph, mask: &FaultMask) -> (Vec<usize>, usize) {
    let n = graph.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for start in graph.nodes() {
        if comp[start.index()] != usize::MAX || mask.is_vertex_faulted(start) {
            continue;
        }
        comp[start.index()] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (to, eid) in graph.neighbors(v) {
                if mask.allows(to, eid) && comp[to.index()] == usize::MAX {
                    comp[to.index()] = count;
                    queue.push_back(to);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Returns `true` if `graph ∖ mask` is connected over its non-faulted
/// vertices (vacuously true when fewer than two vertices remain).
pub fn is_connected(graph: &Graph, mask: &FaultMask) -> bool {
    let (_, count) = connected_components(graph, mask);
    count <= 1
}

/// Eccentricity of `src` in hops (`None` if some vertex is unreachable).
pub fn eccentricity(graph: &Graph, src: NodeId, mask: &FaultMask) -> Option<u32> {
    let dist = hop_distances(graph, src, mask);
    let mut ecc = 0;
    for (v, d) in dist.iter().enumerate() {
        if mask.is_vertex_faulted(NodeId::new(v)) {
            continue;
        }
        if *d == u32::MAX {
            return None;
        }
        ecc = ecc.max(*d);
    }
    Some(ecc)
}

/// Hop diameter of `graph ∖ mask` (`None` if disconnected or empty).
pub fn hop_diameter(graph: &Graph, mask: &FaultMask) -> Option<u32> {
    let mut best = None;
    for v in graph.nodes() {
        if mask.is_vertex_faulted(v) {
            continue;
        }
        let ecc = eccentricity(graph, v, mask)?;
        best = Some(best.map_or(ecc, |b: u32| b.max(ecc)));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeId;

    fn two_triangles() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap()
    }

    #[test]
    fn hop_distances_on_path() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(
            hop_distances(&g, NodeId::new(2), &mask),
            vec![2, 1, 0, 1, 2]
        );
    }

    #[test]
    fn components_counted() {
        let g = two_triangles();
        let mask = FaultMask::for_graph(&g);
        let (comp, count) = connected_components(&g, &mask);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g, &mask));
    }

    #[test]
    fn fault_splits_component() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut mask = FaultMask::for_graph(&g);
        assert!(is_connected(&g, &mask));
        mask.fault_vertex(NodeId::new(1));
        let (_, count) = connected_components(&g, &mask);
        assert_eq!(count, 2);
    }

    #[test]
    fn edge_fault_disconnects_bridge() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_edge(EdgeId::new(0));
        assert!(!is_connected(&g, &mask));
    }

    #[test]
    fn diameter_of_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(hop_diameter(&g, &mask), Some(3));
        assert_eq!(eccentricity(&g, NodeId::new(1), &mask), Some(2));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = two_triangles();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(hop_diameter(&g, &mask), None);
    }

    #[test]
    fn faulted_vertices_excluded_from_eccentricity() {
        let g = two_triangles();
        let mut mask = FaultMask::for_graph(&g);
        for v in [3, 4, 5] {
            mask.fault_vertex(NodeId::new(v));
        }
        // Only one triangle remains; it is connected.
        assert!(is_connected(&g, &mask));
        assert_eq!(hop_diameter(&g, &mask), Some(1));
    }
}
