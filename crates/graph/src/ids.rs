//! Strongly typed node and edge identifiers.
//!
//! Graphs in this crate index their vertices and edges with dense `u32`
//! identifiers. Wrapping them in newtypes ([`NodeId`], [`EdgeId`]) prevents a
//! whole class of "passed a vertex where an edge index was expected" bugs
//! that are easy to hit in algorithms (like fault-set search) that juggle
//! both kinds of index at once.

use std::fmt;

/// Identifier of a vertex in a [`Graph`](crate::Graph).
///
/// Node ids are dense: a graph with `n` vertices uses ids `0..n`.
///
/// # Examples
///
/// ```
/// use spanner_graph::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }

    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an edge in a [`Graph`](crate::Graph).
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`, in insertion
/// order. Algorithms that scan edges "in order of increasing weight" sort ids
/// rather than mutating the graph.
///
/// # Examples
///
/// ```
/// use spanner_graph::EdgeId;
///
/// let e = EdgeId::new(7);
/// assert_eq!(e.index(), 7);
/// assert_eq!(format!("{e}"), "e7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(index as u32)
    }

    /// Returns the raw index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        EdgeId(value)
    }
}

impl From<EdgeId> for u32 {
    fn from(value: EdgeId) -> Self {
        value.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EdgeId({})", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(u32::from(v), 42);
    }

    #[test]
    fn edge_id_round_trip() {
        let e = EdgeId::new(17);
        assert_eq!(e.index(), 17);
        assert_eq!(e.raw(), 17);
        assert_eq!(EdgeId::from(17u32), e);
        assert_eq!(u32::from(e), 17);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(5)), "NodeId(5)");
        assert_eq!(format!("{:?}", EdgeId::new(5)), "EdgeId(5)");
        assert_eq!(NodeId::default().index(), 0);
        assert_eq!(EdgeId::default().index(), 0);
    }
}
