//! The core undirected weighted graph type.

use crate::{Dist, EdgeId, GraphError, NodeId, Weight};
use std::fmt;

/// An undirected weighted edge.
///
/// # Examples
///
/// ```
/// use spanner_graph::{Graph, NodeId, Weight};
///
/// let mut g = Graph::new(2);
/// let e = g.add_edge(NodeId::new(0), NodeId::new(1), Weight::new(5).unwrap());
/// let edge = g.edge(e);
/// assert_eq!(edge.weight().get(), 5);
/// assert_eq!(edge.other(NodeId::new(0)), Some(NodeId::new(1)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    u: NodeId,
    v: NodeId,
    weight: Weight,
}

impl Edge {
    /// One endpoint (the smaller id as inserted).
    #[inline]
    pub fn u(&self) -> NodeId {
        self.u
    }

    /// The other endpoint.
    #[inline]
    pub fn v(&self) -> NodeId {
        self.v
    }

    /// The edge weight.
    #[inline]
    pub fn weight(&self) -> Weight {
        self.weight
    }

    /// Both endpoints as a pair.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// Given one endpoint, returns the other; `None` if `node` is not an
    /// endpoint of this edge.
    #[inline]
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.u {
            Some(self.v)
        } else if node == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// Returns `true` if `node` is an endpoint of this edge.
    #[inline]
    pub fn is_endpoint(&self, node: NodeId) -> bool {
        node == self.u || node == self.v
    }
}

/// An undirected, weighted, simple graph (no self-loops, no parallel edges).
///
/// Vertices are the dense range `0..node_count()`; edges get dense ids in
/// insertion order. The graph is growable, which spanner constructions rely
/// on (the greedy algorithm builds its output one edge at a time and runs
/// shortest-path queries against the partial graph).
///
/// # Examples
///
/// ```
/// use spanner_graph::{Graph, NodeId, Weight};
///
/// let mut g = Graph::new(3);
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// let c = NodeId::new(2);
/// g.add_edge(a, b, Weight::new(1).unwrap());
/// g.add_edge(b, c, Weight::new(2).unwrap());
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(b), 2);
/// assert!(g.contains_edge(a, b).is_some());
/// assert!(g.contains_edge(a, c).is_none());
/// ```
#[derive(Clone, Default)]
pub struct Graph {
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates a graph with `node_count` isolated vertices.
    pub fn new(node_count: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); node_count],
            edges: Vec::new(),
        }
    }

    /// Creates a graph with reserved capacity for `edge_capacity` edges.
    pub fn with_edge_capacity(node_count: usize, edge_capacity: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); node_count],
            edges: Vec::with_capacity(edge_capacity),
        }
    }

    /// Builds a weighted graph from `(u, v, w)` triples over raw indices.
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range, any edge is a
    /// self-loop, any weight is zero, or a pair repeats.
    ///
    /// # Examples
    ///
    /// ```
    /// use spanner_graph::Graph;
    ///
    /// let g = Graph::from_weighted_edges(3, [(0, 1, 2), (1, 2, 4)])?;
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_weighted_edges<I>(node_count: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize, u64)>,
    {
        let mut g = Graph::new(node_count);
        for (u, v, w) in edges {
            let w = Weight::new(w).ok_or(GraphError::ZeroWeight {
                u: NodeId::new(u),
                v: NodeId::new(v),
            })?;
            g.try_add_edge(NodeId::new(u), NodeId::new(v), w)?;
        }
        Ok(g)
    }

    /// Builds an unweighted (unit-weight) graph from `(u, v)` pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::from_weighted_edges`].
    ///
    /// # Examples
    ///
    /// ```
    /// use spanner_graph::Graph;
    ///
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
    /// assert_eq!(g.edge_count(), 4);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_edges<I>(node_count: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = Graph::new(node_count);
        for (u, v) in edges {
            g.try_add_edge(NodeId::new(u), NodeId::new(v), Weight::UNIT)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_edgeless(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.adjacency.len() as u32).map(NodeId::from)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone {
        (0..self.edges.len() as u32).map(EdgeId::from)
    }

    /// Iterates over `(EdgeId, Edge)` pairs in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, Edge)> + Clone + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), *e))
    }

    /// Returns the edge record for `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    #[inline]
    pub fn edge(&self, edge: EdgeId) -> Edge {
        self.edges[edge.index()]
    }

    /// Returns the endpoints of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    #[inline]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        self.edges[edge.index()].endpoints()
    }

    /// Returns the weight of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    #[inline]
    pub fn weight(&self, edge: EdgeId) -> Weight {
        self.edges[edge.index()].weight()
    }

    /// Iterates over `(neighbor, edge)` pairs incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(
        &self,
        node: NodeId,
    ) -> impl ExactSizeIterator<Item = (NodeId, EdgeId)> + Clone + '_ {
        self.adjacency[node.index()].iter().copied()
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> Dist {
        self.edges.iter().map(|e| e.weight().to_dist()).sum()
    }

    /// Looks up the edge between `u` and `v`, scanning the smaller adjacency
    /// list. O(min degree).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[a.index()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, e)| *e)
    }

    /// Appends a fresh isolated vertex and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId::new(self.adjacency.len() - 1)
    }

    /// Adds an undirected edge, validating endpoints, loop-freeness and
    /// uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateEdge`].
    pub fn try_add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        weight: Weight,
    ) -> Result<EdgeId, GraphError> {
        let n = self.node_count();
        if u.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: n,
            });
        }
        if v.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if let Some(existing) = self.contains_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u, v, existing });
        }
        Ok(self.push_edge(u, v, weight))
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`Graph::try_add_edge`] reports as errors.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        match self.try_add_edge(u, v, weight) {
            Ok(id) => id,
            Err(e) => panic!("add_edge: {e}"),
        }
    }

    /// Adds an undirected edge without the duplicate-edge scan.
    ///
    /// Generators that already guarantee simple output use this to avoid the
    /// O(degree) duplicate check on dense graphs.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`. Duplicates are
    /// *not* detected; callers must guarantee simplicity.
    pub fn add_edge_unchecked(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        let n = self.node_count();
        assert!(u.index() < n && v.index() < n, "edge endpoint out of range");
        assert!(u != v, "self-loop at {u}");
        self.push_edge(u, v, weight)
    }

    fn push_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { u, v, weight });
        self.adjacency[u.index()].push((v, id));
        self.adjacency[v.index()].push((u, id));
        id
    }

    /// Returns edge ids sorted by `(weight, id)` — the scan order of greedy
    /// spanner algorithms ("in order of increasing weight", ties broken by
    /// insertion order for determinism).
    ///
    /// The result is freshly allocated and sorted on every call; greedy
    /// runners compute it once per construction rather than per query.
    pub fn edges_by_weight(&self) -> Vec<EdgeId> {
        let mut ids: Vec<EdgeId> = self.edge_ids().collect();
        // `sort_unstable` is safe despite the documented tie-break: the id
        // is part of the key, so the comparator is already a total order
        // and stability adds nothing but overhead.
        ids.sort_unstable_by_key(|e| (self.weight(*e), *e));
        ids
    }

    /// Returns `true` if all edges have unit weight.
    pub fn is_unweighted(&self) -> bool {
        self.edges.iter().all(|e| e.weight() == Weight::UNIT)
    }

    /// The number of edges a simple graph on this many nodes can have.
    pub fn max_possible_edges(&self) -> usize {
        let n = self.node_count();
        n * n.saturating_sub(1) / 2
    }

    /// Edge density `m / (n choose 2)` (0 when `n < 2`).
    pub fn density(&self) -> f64 {
        let cap = self.max_possible_edges();
        if cap == 0 {
            0.0
        } else {
            self.edge_count() as f64 / cap as f64
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph with {} nodes, {} edges:",
            self.node_count(),
            self.edge_count()
        )?;
        for (id, e) in self.edges() {
            writeln!(f, "  {id}: {} -- {} (w={})", e.u(), e.v(), e.weight())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_edgeless());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for (id, e) in g.edges() {
            assert!(g.neighbors(e.u()).any(|(n, eid)| n == e.v() && eid == id));
            assert!(g.neighbors(e.v()).any(|(n, eid)| n == e.u() && eid == id));
        }
    }

    #[test]
    fn degrees_count_incident_edges() {
        let g = triangle();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn contains_edge_finds_both_orientations() {
        let g = triangle();
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        assert_eq!(g.contains_edge(a, b), g.contains_edge(b, a));
        assert!(g.contains_edge(a, b).is_some());
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        let err = g.try_add_edge(NodeId::new(1), NodeId::new(1), Weight::UNIT);
        assert_eq!(
            err,
            Err(GraphError::SelfLoop {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(2);
        let first = g.add_edge(NodeId::new(0), NodeId::new(1), Weight::UNIT);
        let err = g.try_add_edge(NodeId::new(1), NodeId::new(0), Weight::UNIT);
        assert_eq!(
            err,
            Err(GraphError::DuplicateEdge {
                u: NodeId::new(1),
                v: NodeId::new(0),
                existing: first,
            })
        );
    }

    #[test]
    fn rejects_out_of_range_node() {
        let mut g = Graph::new(2);
        let err = g.try_add_edge(NodeId::new(0), NodeId::new(5), Weight::UNIT);
        assert!(matches!(err, Err(GraphError::NodeOutOfRange { .. })));
    }

    #[test]
    fn from_weighted_edges_builds() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 3), (1, 2, 9)]).unwrap();
        assert_eq!(g.weight(EdgeId::new(1)).get(), 9);
        assert_eq!(g.total_weight(), Dist::finite(12));
    }

    #[test]
    fn from_weighted_edges_rejects_zero_weight() {
        assert!(Graph::from_weighted_edges(3, [(0, 1, 0)]).is_err());
    }

    #[test]
    fn edges_by_weight_sorts_with_stable_ties() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 5), (1, 2, 1), (2, 3, 5), (3, 0, 2)]).unwrap();
        let order = g.edges_by_weight();
        let weights: Vec<u64> = order.iter().map(|e| g.weight(*e).get()).collect();
        assert_eq!(weights, vec![1, 2, 5, 5]);
        // Equal weights keep insertion order.
        assert_eq!(order[2], EdgeId::new(0));
        assert_eq!(order[3], EdgeId::new(2));
    }

    #[test]
    fn add_node_grows() {
        let mut g = triangle();
        let v = g.add_node();
        assert_eq!(v, NodeId::new(3));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degree(v), 0);
    }

    #[test]
    fn density_of_triangle_is_one() {
        let g = triangle();
        assert_eq!(g.density(), 1.0);
        assert_eq!(g.max_possible_edges(), 3);
    }

    #[test]
    fn unweighted_detection() {
        assert!(triangle().is_unweighted());
        let g = Graph::from_weighted_edges(2, [(0, 1, 7)]).unwrap();
        assert!(!g.is_unweighted());
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(EdgeId::new(0));
        assert_eq!(e.other(e.u()), Some(e.v()));
        assert_eq!(e.other(e.v()), Some(e.u()));
        assert_eq!(e.other(NodeId::new(2)), None);
        assert!(e.is_endpoint(e.u()));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn add_edge_panics_on_loop() {
        let mut g = Graph::new(1);
        // Grow so index is valid, then loop.
        g.add_node();
        g.add_edge(NodeId::new(1), NodeId::new(1), Weight::UNIT);
    }

    #[test]
    fn display_lists_edges() {
        let g = triangle();
        let s = g.to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("e0"));
    }

    #[test]
    fn unchecked_add_skips_duplicate_scan() {
        let mut g = Graph::new(3);
        g.add_edge_unchecked(NodeId::new(0), NodeId::new(1), Weight::UNIT);
        // Intentionally no duplicate check: caller contract.
        assert_eq!(g.edge_count(), 1);
    }
}
