//! Deterministic graph families: complete graphs, bipartite graphs, paths,
//! cycles, grids, hypercubes, generalized Petersen graphs.
//!
//! All generators produce unit weights; use
//! [`with_uniform_weights`](super::with_uniform_weights) to randomize.

use crate::{Graph, NodeId, Weight};

/// The complete graph `K_n`.
///
/// # Examples
///
/// ```
/// use spanner_graph::generators::complete;
///
/// let g = complete(5);
/// assert_eq!(g.edge_count(), 10);
/// ```
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}` (sides `0..a` and `a..a+b`).
///
/// `K_{a,b}` is triangle-free (girth 4 when `a, b >= 2`), and balanced
/// bicliques are the extremal graphs for girth > 3 — they witness the
/// `b(n, 3) = ⌊n²/4⌋` case of the paper's size bound.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::with_edge_capacity(a + b, a * b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge_unchecked(NodeId::new(u), NodeId::new(a + v), Weight::UNIT);
        }
    }
    g
}

/// The path graph `P_n` (`n` vertices, `n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_edge_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        g.add_edge_unchecked(NodeId::new(i - 1), NodeId::new(i), Weight::UNIT);
    }
    g
}

/// The cycle graph `C_n`.
///
/// # Panics
///
/// Panics if `n < 3` (shorter cycles are not simple graphs).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut g = Graph::with_edge_capacity(n, n);
    for i in 0..n {
        g.add_edge_unchecked(NodeId::new(i), NodeId::new((i + 1) % n), Weight::UNIT);
    }
    g
}

/// The star `K_{1,n}` with center `0`.
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::with_edge_capacity(leaves + 1, leaves);
    for i in 1..=leaves {
        g.add_edge_unchecked(NodeId::new(0), NodeId::new(i), Weight::UNIT);
    }
    g
}

/// The `rows × cols` grid (4-neighbor lattice).
///
/// # Examples
///
/// ```
/// use spanner_graph::generators::grid;
///
/// let g = grid(3, 4);
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
/// ```
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge_unchecked(id(r, c), id(r, c + 1), Weight::UNIT);
            }
            if r + 1 < rows {
                g.add_edge_unchecked(id(r, c), id(r + 1, c), Weight::UNIT);
            }
        }
    }
    g
}

/// The `dim`-dimensional hypercube `Q_dim` on `2^dim` vertices.
///
/// # Panics
///
/// Panics if `dim >= 30` (node count would overflow practical sizes).
pub fn hypercube(dim: u32) -> Graph {
    assert!(dim < 30, "hypercube dimension too large");
    let n = 1usize << dim;
    let mut g = Graph::with_edge_capacity(n, n * dim as usize / 2);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if u > v {
                g.add_edge_unchecked(NodeId::new(v), NodeId::new(u), Weight::UNIT);
            }
        }
    }
    g
}

/// The generalized Petersen graph `GP(n, k)`: outer cycle `C_n`, inner
/// star polygon with step `k`, and spokes. `GP(5, 2)` is the Petersen graph.
///
/// # Panics
///
/// Panics unless `n >= 3` and `1 <= k < n/2` (the classical validity range,
/// which keeps the graph simple and 3-regular).
pub fn generalized_petersen(n: usize, k: usize) -> Graph {
    assert!(n >= 3, "generalized Petersen needs n >= 3");
    assert!(
        k >= 1 && 2 * k < n,
        "generalized Petersen needs 1 <= k < n/2"
    );
    let mut g = Graph::with_edge_capacity(2 * n, 3 * n);
    for i in 0..n {
        // Outer cycle.
        g.add_edge_unchecked(NodeId::new(i), NodeId::new((i + 1) % n), Weight::UNIT);
        // Spoke.
        g.add_edge_unchecked(NodeId::new(i), NodeId::new(n + i), Weight::UNIT);
    }
    // Inner star polygon: i -> i + k (mod n). Because 2k < n, the unordered
    // pairs {i, i+k} are pairwise distinct, so each inner edge is produced
    // exactly once by this loop.
    for i in 0..n {
        let j = (i + k) % n;
        g.add_edge_unchecked(NodeId::new(n + i), NodeId::new(n + j), Weight::UNIT);
    }
    g
}

/// The Petersen graph (10 vertices, 15 edges, girth 5) — the (3,5)-cage.
pub fn petersen() -> Graph {
    generalized_petersen(5, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, girth, FaultMask};

    #[test]
    fn complete_counts() {
        for n in 0..8 {
            let g = complete(n);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n * n.saturating_sub(1) / 2);
        }
    }

    #[test]
    fn complete_bipartite_counts_and_girth() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth::girth(&g, &mask), Some(4));
    }

    #[test]
    fn path_and_cycle() {
        let p = path(6);
        assert_eq!(p.edge_count(), 5);
        let mask = FaultMask::for_graph(&p);
        assert!(bfs::is_connected(&p, &mask));
        assert_eq!(girth::girth(&p, &mask), None);
        let c = cycle(6);
        let mask = FaultMask::for_graph(&c);
        assert_eq!(girth::girth(&c, &mask), Some(6));
    }

    #[test]
    fn star_degrees() {
        let g = star(5);
        assert_eq!(g.degree(NodeId::new(0)), 5);
        for i in 1..=5 {
            assert_eq!(g.degree(NodeId::new(i)), 1);
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 17);
        let mask = FaultMask::for_graph(&g);
        assert!(bfs::is_connected(&g, &mask));
        assert_eq!(girth::girth(&g, &mask), Some(4));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth::girth(&g, &mask), Some(4));
    }

    #[test]
    fn petersen_is_three_regular_girth_five() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth::girth(&g, &mask), Some(5));
    }

    #[test]
    fn generalized_petersen_regularity() {
        for (n, k) in [(7, 2), (8, 3), (9, 2), (11, 4), (12, 5)] {
            let g = generalized_petersen(n, k);
            assert_eq!(g.node_count(), 2 * n, "GP({n},{k}) nodes");
            assert_eq!(g.edge_count(), 3 * n, "GP({n},{k}) edges");
            for v in g.nodes() {
                assert_eq!(g.degree(v), 3, "GP({n},{k}) degree of {v}");
            }
        }
    }

    #[test]
    fn desargues_girth() {
        // GP(10, 3) is the Desargues graph, girth 6.
        let g = generalized_petersen(10, 3);
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth::girth(&g, &mask), Some(6));
    }

    #[test]
    #[should_panic(expected = "1 <= k < n/2")]
    fn generalized_petersen_rejects_bad_step() {
        let _ = generalized_petersen(6, 3);
    }
}
