//! Cartesian graph products.
//!
//! The Bodwin–Patel lower-bound family is the Cartesian product of a
//! high-girth graph with a biclique; this module supplies the product
//! operation with an explicit, documented vertex numbering so the lower
//! bound construction (and its blocking set) can address product vertices.

use crate::{Graph, NodeId};

/// Cartesian product `A □ B`.
///
/// Vertex `(a, b)` is numbered `a * B.node_count() + b` (see
/// [`product_node`]). Edges:
///
/// * `((a, b), (a', b))` with the weight of `(a, a')`, for every edge of `A`;
/// * `((a, b), (a, b'))` with the weight of `(b, b')`, for every edge of `B`.
///
/// So `|V| = |V_A|·|V_B|` and `|E| = |E_A|·|V_B| + |V_A|·|E_B|`.
///
/// # Examples
///
/// ```
/// use spanner_graph::generators::{cartesian_product, cycle, path};
///
/// // C4 □ P2 is the "cube with two squares" (Q3 when both are P2 x P2 x P2...)
/// let g = cartesian_product(&cycle(4), &path(2));
/// assert_eq!(g.node_count(), 8);
/// assert_eq!(g.edge_count(), 4 * 2 + 4 * 1);
/// ```
pub fn cartesian_product(a: &Graph, b: &Graph) -> Graph {
    let nb = b.node_count();
    let mut g = Graph::with_edge_capacity(
        a.node_count() * nb,
        a.edge_count() * nb + a.node_count() * b.edge_count(),
    );
    // A-edges replicated per B-vertex.
    for (_, ea) in a.edges() {
        for bv in 0..nb {
            g.add_edge_unchecked(
                product_node(ea.u(), NodeId::new(bv), nb),
                product_node(ea.v(), NodeId::new(bv), nb),
                ea.weight(),
            );
        }
    }
    // B-edges replicated per A-vertex.
    for av in a.nodes() {
        for (_, eb) in b.edges() {
            g.add_edge_unchecked(
                product_node(av, eb.u(), nb),
                product_node(av, eb.v(), nb),
                eb.weight(),
            );
        }
    }
    g
}

/// The id of product vertex `(a, b)` in `A □ B` where `b_count` is
/// `B.node_count()`.
#[inline]
pub fn product_node(a: NodeId, b: NodeId, b_count: usize) -> NodeId {
    NodeId::new(a.index() * b_count + b.index())
}

/// Inverse of [`product_node`]: splits a product vertex back into its
/// `(a, b)` coordinates.
#[inline]
pub fn product_coordinates(v: NodeId, b_count: usize) -> (NodeId, NodeId) {
    (
        NodeId::new(v.index() / b_count),
        NodeId::new(v.index() % b_count),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_bipartite, cycle, path};
    use crate::{bfs, girth, FaultMask};

    #[test]
    fn counts_match_formula() {
        let a = cycle(5);
        let b = complete_bipartite(2, 2);
        let g = cartesian_product(&a, &b);
        assert_eq!(g.node_count(), 5 * 4);
        assert_eq!(g.edge_count(), 5 * 4 + 5 * 4);
    }

    #[test]
    fn p2_product_p2_is_c4() {
        let p2 = path(2);
        let g = cartesian_product(&p2, &p2);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth::girth(&g, &mask), Some(4));
    }

    #[test]
    fn product_of_connected_is_connected() {
        let g = cartesian_product(&cycle(4), &path(3));
        let mask = FaultMask::for_graph(&g);
        assert!(bfs::is_connected(&g, &mask));
    }

    #[test]
    fn coordinates_round_trip() {
        let nb = 7;
        for a in 0..5 {
            for b in 0..nb {
                let v = product_node(NodeId::new(a), NodeId::new(b), nb);
                assert_eq!(product_coordinates(v, nb), (NodeId::new(a), NodeId::new(b)));
            }
        }
    }

    #[test]
    fn degrees_add() {
        let a = cycle(4); // 2-regular
        let b = complete_bipartite(2, 2); // 2-regular
        let g = cartesian_product(&a, &b);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn product_girth_is_min_of_factors_or_four() {
        // C5 □ C5: girth min(5, 5, 4) = 4 (squares from mixed edges).
        let g = cartesian_product(&cycle(5), &cycle(5));
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth::girth(&g, &mask), Some(4));
    }
}
