//! Graph generators: deterministic families, random models, geometric
//! graphs, products, and weight decorators.
//!
//! Every random generator takes `&mut impl Rng`, so experiments can pin
//! seeds; deterministic generators are plain functions of their parameters.

mod classic;
mod geometric;
mod product;
mod random;
mod weights;

pub use classic::{
    complete, complete_bipartite, cycle, generalized_petersen, grid, hypercube, path, petersen,
    star,
};
pub use geometric::{graph_of_points, random_geometric};
pub use product::{cartesian_product, product_coordinates, product_node};
pub use random::{erdos_renyi, gnm, preferential_attachment, random_regular, watts_strogatz};
pub use weights::{with_constant_weight, with_uniform_weights};
