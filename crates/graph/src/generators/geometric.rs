//! Random geometric graphs: points in the unit square joined when close.
//!
//! These model the "physical network" workloads (sensor fields, data-center
//! layouts) that motivate spanners in practice: edge weights are scaled
//! Euclidean distances, so shortcuts and detours behave like real wiring.

use crate::{Graph, NodeId, Weight};
use rand::Rng;

/// Scale factor turning unit-square distances into integer weights.
const WEIGHT_SCALE: f64 = 1000.0;

/// A random geometric graph: `n` points uniform in the unit square, edge
/// between points at Euclidean distance at most `radius`, weight equal to
/// the distance scaled by 1000 (minimum 1).
///
/// # Panics
///
/// Panics unless `radius > 0`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use spanner_graph::generators::random_geometric;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = random_geometric(50, 0.3, &mut rng);
/// assert_eq!(g.node_count(), 50);
/// assert!(g.edge_count() > 0);
/// ```
pub fn random_geometric(n: usize, radius: f64, rng: &mut impl Rng) -> Graph {
    assert!(radius > 0.0, "radius must be positive");
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    graph_of_points(&points, radius)
}

/// Builds the geometric graph over explicit points (useful for
/// deterministic tests and for replaying recorded topologies).
///
/// # Panics
///
/// Panics unless `radius > 0`.
pub fn graph_of_points(points: &[(f64, f64)], radius: f64) -> Graph {
    assert!(radius > 0.0, "radius must be positive");
    let n = points.len();
    let mut g = Graph::new(n);
    // Bucket grid of cell size >= radius: only neighboring cells can hold
    // endpoints within range, making construction O(n + m) in expectation.
    // (floor, not ceil: ceil would make cells narrower than the radius and
    // the 3x3 neighborhood scan would miss near-radius pairs.)
    let cells = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); cells * cells];
    for (i, p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(*p);
        grid[cy * cells + cx].push(i);
    }
    let r2 = radius * radius;
    for (i, p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(*p);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    if j <= i {
                        continue;
                    }
                    let q = points[j];
                    let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2);
                    if d2 <= r2 {
                        let w = ((d2.sqrt() * WEIGHT_SCALE) as u64).max(1);
                        g.add_edge_unchecked(
                            NodeId::new(i),
                            NodeId::new(j),
                            Weight::new(w).expect("clamped to >= 1"),
                        );
                    }
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn explicit_points_edges() {
        // Unit square corners; radius covers sides but not the diagonal.
        let pts = [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)];
        let g = graph_of_points(&pts, 1.05);
        assert_eq!(g.edge_count(), 4);
        // Weights are ~1000 for the sides.
        for (_, e) in g.edges() {
            assert!((e.weight().get() as i64 - 1000).abs() <= 60);
        }
    }

    #[test]
    fn radius_covers_diagonal() {
        let pts = [(0.0, 0.0), (1.0, 1.0)];
        let g = graph_of_points(&pts, 1.5);
        assert_eq!(g.edge_count(), 1);
        let w = g.edges().next().unwrap().1.weight().get();
        assert!((w as f64 - 2f64.sqrt() * 1000.0).abs() < 60.0);
    }

    #[test]
    fn coincident_points_get_min_weight_one() {
        let pts = [(0.5, 0.5), (0.5, 0.5)];
        let g = graph_of_points(&pts, 0.1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edges().next().unwrap().1.weight().get(), 1);
    }

    #[test]
    fn bucketing_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(21);
        let points: Vec<(f64, f64)> = (0..80)
            .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let radius = 0.23;
        let fast = graph_of_points(&points, radius);
        // Brute force count.
        let mut brute = 0;
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let d2 = (points[i].0 - points[j].0).powi(2) + (points[i].1 - points[j].1).powi(2);
                if d2 <= radius * radius {
                    brute += 1;
                }
            }
        }
        assert_eq!(fast.edge_count(), brute);
    }

    #[test]
    fn density_grows_with_radius() {
        let mut rng = StdRng::seed_from_u64(2);
        let points: Vec<(f64, f64)> = (0..100)
            .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let sparse = graph_of_points(&points, 0.1);
        let dense = graph_of_points(&points, 0.4);
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn deterministic_for_seed() {
        let g1 = random_geometric(60, 0.2, &mut StdRng::seed_from_u64(5));
        let g2 = random_geometric(60, 0.2, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1.edge_count(), g2.edge_count());
    }
}
