//! Weight decorators: re-weight an existing topology.

use crate::{Graph, Weight};
use rand::Rng;

/// Copies `graph` with every edge weight drawn uniformly from
/// `[lo, hi]` (inclusive).
///
/// The topology (node ids, edge ids, adjacency order) is preserved exactly,
/// so structural results on the unweighted graph carry over.
///
/// # Panics
///
/// Panics unless `1 <= lo <= hi`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use spanner_graph::generators::{complete, with_uniform_weights};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let g = with_uniform_weights(&complete(6), 1, 100, &mut rng);
/// assert!(g.edges().all(|(_, e)| (1..=100).contains(&e.weight().get())));
/// ```
pub fn with_uniform_weights(graph: &Graph, lo: u64, hi: u64, rng: &mut impl Rng) -> Graph {
    assert!(lo >= 1, "weights must be positive");
    assert!(lo <= hi, "weight range is empty");
    let mut g = Graph::with_edge_capacity(graph.node_count(), graph.edge_count());
    for (_, e) in graph.edges() {
        let w = rng.gen_range(lo..=hi);
        g.add_edge_unchecked(e.u(), e.v(), Weight::new(w).expect("lo >= 1"));
    }
    g
}

/// Copies `graph` with every edge weight set to `weight`.
pub fn with_constant_weight(graph: &Graph, weight: Weight) -> Graph {
    let mut g = Graph::with_edge_capacity(graph.node_count(), graph.edge_count());
    for (_, e) in graph.edges() {
        g.add_edge_unchecked(e.u(), e.v(), weight);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::cycle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_topology() {
        let base = cycle(8);
        let mut rng = StdRng::seed_from_u64(4);
        let g = with_uniform_weights(&base, 5, 9, &mut rng);
        assert_eq!(g.node_count(), base.node_count());
        assert_eq!(g.edge_count(), base.edge_count());
        for (id, e) in base.edges() {
            let (u, v) = g.endpoints(id);
            assert_eq!((u, v), (e.u(), e.v()));
        }
    }

    #[test]
    fn weights_in_range() {
        let base = cycle(100);
        let mut rng = StdRng::seed_from_u64(4);
        let g = with_uniform_weights(&base, 5, 9, &mut rng);
        for (_, e) in g.edges() {
            assert!((5..=9).contains(&e.weight().get()));
        }
        // With 100 draws from a 5-value range, we expect to see variety.
        let distinct: std::collections::HashSet<u64> =
            g.edges().map(|(_, e)| e.weight().get()).collect();
        assert!(distinct.len() >= 3);
    }

    #[test]
    fn constant_weight_copy() {
        let base = cycle(5);
        let g = with_constant_weight(&base, Weight::new(7).unwrap());
        assert!(g.edges().all(|(_, e)| e.weight().get() == 7));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lo() {
        let base = cycle(3);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = with_uniform_weights(&base, 0, 5, &mut rng);
    }
}
