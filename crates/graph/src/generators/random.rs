//! Random graph models: Erdős–Rényi, fixed-edge-count, near-regular graphs
//! via edge swaps, and preferential attachment.
//!
//! Every generator takes the RNG explicitly so experiments are reproducible
//! from a seed.

use crate::{Graph, NodeId, Weight};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Erdős–Rényi `G(n, p)`: each of the `n·(n−1)/2` pairs is an edge
/// independently with probability `p`.
///
/// Uses geometric skip-sampling, so the cost is proportional to the output
/// size rather than `n²` for sparse graphs.
///
/// # Panics
///
/// Panics unless `0.0 <= p <= 1.0`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use spanner_graph::generators::erdos_renyi;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = erdos_renyi(100, 0.05, &mut rng);
/// assert_eq!(g.node_count(), 100);
/// ```
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut g = Graph::new(n);
    if p <= 0.0 || n < 2 {
        return g;
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
            }
        }
        return g;
    }
    // Skip-sampling over the linearized upper triangle (Batagelj–Brandes).
    let log_q = (1.0 - p).ln();
    let total = n * (n - 1) / 2;
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as i64 + 1;
        idx += skip.max(1);
        if idx as usize >= total {
            break;
        }
        let (u, v) = unrank_pair(idx as usize, n);
        g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
    }
    g
}

/// Maps a linear index into the upper triangle of an `n × n` matrix to the
/// pair `(u, v)` with `u < v`, in row-major order.
fn unrank_pair(mut idx: usize, n: usize) -> (usize, usize) {
    // Row u contributes n-1-u pairs.
    let mut u = 0usize;
    loop {
        let row = n - 1 - u;
        if idx < row {
            return (u, u + 1 + idx);
        }
        idx -= row;
        u += 1;
    }
}

/// `G(n, m)`: exactly `m` distinct edges sampled uniformly at random.
///
/// # Panics
///
/// Panics if `m` exceeds `n·(n−1)/2`.
pub fn gnm(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    let total = n * n.saturating_sub(1) / 2;
    assert!(m <= total, "too many edges requested: {m} > {total}");
    let mut g = Graph::with_edge_capacity(n, m);
    if m == 0 {
        return g;
    }
    if m * 3 >= total {
        // Dense: sample by shuffling all pair indices.
        let mut all: Vec<usize> = (0..total).collect();
        all.shuffle(rng);
        for &idx in all.iter().take(m) {
            let (u, v) = unrank_pair(idx, n);
            g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
        }
        return g;
    }
    // Sparse: rejection-sample distinct pair indices.
    let mut chosen = HashSet::with_capacity(m * 2);
    while chosen.len() < m {
        let idx = rng.gen_range(0..total);
        if chosen.insert(idx) {
            let (u, v) = unrank_pair(idx, n);
            g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
        }
    }
    g
}

/// A random `d`-regular(ish) graph: starts from a deterministic `d`-regular
/// circulant and randomizes it with degree-preserving double-edge swaps.
///
/// The result is always simple and exactly `d`-regular when `n·d` is even
/// and `d < n`; the swap walk (≈ `10·m` accepted swaps) mixes it towards a
/// uniform-ish random regular graph, which is all the experiments need
/// (they want "not a special graph", not exact uniformity).
///
/// # Panics
///
/// Panics if `d >= n` or `n·d` is odd.
pub fn random_regular(n: usize, d: usize, rng: &mut impl Rng) -> Graph {
    assert!(d < n, "degree must be below n");
    assert!(n * d % 2 == 0, "n*d must be even for a d-regular graph");
    // Circulant base: connect i to i±1, i±2, ..., i±d/2 (and i + n/2 for odd d).
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
    let mut present: HashSet<(usize, usize)> = HashSet::with_capacity(n * d);
    let push = |edges: &mut Vec<(usize, usize)>,
                present: &mut HashSet<(usize, usize)>,
                a: usize,
                b: usize| {
        let key = (a.min(b), a.max(b));
        if present.insert(key) {
            edges.push(key);
        }
    };
    for i in 0..n {
        for step in 1..=(d / 2) {
            push(&mut edges, &mut present, i, (i + step) % n);
        }
    }
    if d % 2 == 1 {
        // n is even here (n*d even with d odd).
        for i in 0..n / 2 {
            push(&mut edges, &mut present, i, i + n / 2);
        }
    }
    debug_assert_eq!(edges.len(), n * d / 2);
    // Double-edge swaps: (a,b),(c,e) -> (a,c),(b,e) keeping simplicity.
    let m = edges.len();
    if m >= 2 {
        let target_swaps = 10 * m;
        let mut accepted = 0usize;
        let mut attempts = 0usize;
        while accepted < target_swaps && attempts < 100 * target_swaps {
            attempts += 1;
            let i = rng.gen_range(0..m);
            let j = rng.gen_range(0..m);
            if i == j {
                continue;
            }
            let (a, b) = edges[i];
            let (c, e) = edges[j];
            // Orient the second edge randomly for symmetry of the walk.
            let (c, e) = if rng.gen_bool(0.5) { (c, e) } else { (e, c) };
            if a == c || a == e || b == c || b == e {
                continue;
            }
            let new1 = (a.min(c), a.max(c));
            let new2 = (b.min(e), b.max(e));
            if present.contains(&new1) || present.contains(&new2) {
                continue;
            }
            present.remove(&(a.min(b), a.max(b)));
            present.remove(&(c.min(e), c.max(e)));
            present.insert(new1);
            present.insert(new2);
            edges[i] = new1;
            edges[j] = new2;
            accepted += 1;
        }
    }
    let mut g = Graph::with_edge_capacity(n, edges.len());
    for (u, v) in edges {
        g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m` distinct existing vertices chosen
/// proportionally to degree.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn preferential_attachment(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more vertices than the attachment count");
    let mut g = Graph::new(n);
    // Seed clique on m+1 vertices.
    let seed = m + 1;
    let mut endpoint_pool: Vec<usize> = Vec::new();
    for u in 0..seed {
        for v in (u + 1)..seed {
            g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    for v in seed..n {
        let mut targets: HashSet<usize> = HashSet::with_capacity(m);
        // Degree-proportional sampling = uniform over the endpoint pool.
        let mut guard = 0;
        while targets.len() < m {
            let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            targets.insert(t);
            guard += 1;
            if guard > 100 * m + 100 {
                // Extremely unlikely; fall back to low-degree fill.
                for u in 0..v {
                    if targets.len() >= m {
                        break;
                    }
                    targets.insert(u);
                }
            }
        }
        for t in targets {
            g.add_edge_unchecked(NodeId::new(v), NodeId::new(t), Weight::UNIT);
            endpoint_pool.push(v);
            endpoint_pool.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, FaultMask};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unrank_pair_is_bijective() {
        let n = 7;
        let mut seen = HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = unrank_pair(idx, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "edge count {m} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_is_deterministic_for_seed() {
        let g1 = erdos_renyi(50, 0.2, &mut StdRng::seed_from_u64(9));
        let g2 = erdos_renyi(50, 0.2, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.edge_count(), g2.edge_count());
        let e1: Vec<_> = g1.edges().map(|(_, e)| (e.u(), e.v())).collect();
        let e2: Vec<_> = g2.edges().map(|(_, e)| (e.u(), e.v())).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn gnm_exact_count_sparse_and_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        for (n, m) in [(30, 10), (30, 300), (30, 435)] {
            let g = gnm(n, m, &mut rng);
            assert_eq!(g.edge_count(), m, "G({n},{m})");
        }
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn gnm_rejects_overfull() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = gnm(5, 11, &mut rng);
    }

    #[test]
    fn random_regular_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        for (n, d) in [(10, 3), (20, 4), (15, 4), (30, 7)] {
            let g = random_regular(n, d, &mut rng);
            assert_eq!(g.edge_count(), n * d / 2, "({n},{d})");
            for v in g.nodes() {
                assert_eq!(g.degree(v), d, "({n},{d}) degree of {v}");
            }
        }
    }

    #[test]
    fn random_regular_usually_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_regular(40, 4, &mut rng);
        let mask = FaultMask::for_graph(&g);
        assert!(bfs::is_connected(&g, &mask));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_rejects_odd_product() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = random_regular(5, 3, &mut rng);
    }

    #[test]
    fn preferential_attachment_structure() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100;
        let m = 3;
        let g = preferential_attachment(n, m, &mut rng);
        assert_eq!(g.node_count(), n);
        // Seed clique K4 (6 edges) + (n - 4) * 3 attachments.
        assert_eq!(g.edge_count(), 6 + (n - 4) * 3);
        let mask = FaultMask::for_graph(&g);
        assert!(bfs::is_connected(&g, &mask));
    }

    #[test]
    fn preferential_attachment_has_hubs() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = preferential_attachment(300, 2, &mut rng);
        // Scale-free-ish: max degree far above the minimum (2).
        assert!(
            g.max_degree() > 10,
            "max degree {} too small",
            g.max_degree()
        );
    }
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex is
/// joined to its `k/2` nearest neighbors on both sides, with every edge
/// rewired to a random non-duplicate endpoint with probability `beta`.
///
/// Small-world networks are the classic "realistic" topology between the
/// lattice (`beta = 0`) and `G(n,p)`-like randomness (`beta = 1`); the
/// fault-injection experiments use them as a third workload family.
///
/// # Panics
///
/// Panics unless `k` is even, `k >= 2`, `k < n`, and `0 ≤ beta ≤ 1`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut impl Rng) -> Graph {
    assert!(k >= 2 && k % 2 == 0, "k must be even and at least 2");
    assert!(k < n, "k must be below n");
    assert!((0.0..=1.0).contains(&beta), "beta out of range");
    let mut present: HashSet<(usize, usize)> = HashSet::with_capacity(n * k);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * k / 2);
    let key = |a: usize, b: usize| (a.min(b), a.max(b));
    for i in 0..n {
        for step in 1..=(k / 2) {
            let j = (i + step) % n;
            if present.insert(key(i, j)) {
                edges.push(key(i, j));
            }
        }
    }
    for edge in edges.iter_mut() {
        if !rng.gen_bool(beta) {
            continue;
        }
        let (u, old_v) = *edge;
        // Rewire the far endpoint to a uniform random fresh target.
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 4 * n {
                break; // saturated neighborhood; keep the original edge
            }
            let new_v = rng.gen_range(0..n);
            if new_v == u || present.contains(&key(u, new_v)) {
                continue;
            }
            present.remove(&key(u, old_v));
            present.insert(key(u, new_v));
            *edge = key(u, new_v);
            break;
        }
    }
    let mut g = Graph::with_edge_capacity(n, edges.len());
    for (u, v) in edges {
        g.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
    }
    g
}

#[cfg(test)]
mod watts_strogatz_tests {
    use super::*;
    use crate::{bfs, FaultMask};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(12, 4, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 12 * 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        let mut rng = StdRng::seed_from_u64(2);
        for beta in [0.1, 0.5, 1.0] {
            let g = watts_strogatz(30, 6, beta, &mut rng);
            assert_eq!(g.edge_count(), 30 * 3, "beta={beta}");
        }
    }

    #[test]
    fn stays_connected_at_moderate_beta() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = watts_strogatz(60, 6, 0.2, &mut rng);
        let mask = FaultMask::for_graph(&g);
        assert!(bfs::is_connected(&g, &mask));
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let mut rng = StdRng::seed_from_u64(4);
        let lattice = watts_strogatz(100, 4, 0.0, &mut rng);
        let rewired = watts_strogatz(100, 4, 0.3, &mut rng);
        let lat_d = bfs::hop_diameter(&lattice, &FaultMask::for_graph(&lattice));
        let rew_d = bfs::hop_diameter(&rewired, &FaultMask::for_graph(&rewired));
        if let (Some(a), Some(b)) = (lat_d, rew_d) {
            assert!(b < a, "small world should shrink diameter: {b} vs {a}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
