//! Disjoint-set union (union-find) with union by rank and path halving.
//!
//! Used by generators (connectivity repair), Kruskal-style utilities, and
//! tests that need quick component bookkeeping without running BFS.

/// A union-find structure over `0..len` elements.
///
/// # Examples
///
/// ```
/// use spanner_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0), "already joined");
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a >= len` or `b >= len`.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn chain_unions_converge() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_is_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
        assert_eq!(uf.component_count(), 0);
    }
}
