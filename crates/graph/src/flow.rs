//! A small unit-capacity max-flow solver (Dinic's algorithm).
//!
//! Menger's theorem turns disjoint-path and cut questions into max-flow:
//! the number of edge-disjoint `s→t` paths equals the min edge cut, and
//! with vertex splitting the same holds for internally vertex-disjoint
//! paths. The connectivity module uses this to answer *feasibility*
//! questions for fault tolerant spanners (e.g. "can any subgraph survive
//! `f` vertex faults between `s` and `t` at all?") exactly — unlike the
//! greedy packing in `spanner-faults`, which is only a bound under a
//! length constraint.

use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct Arc {
    to: u32,
    cap: u32,
    rev: u32,
}

/// A directed flow network with integer capacities.
///
/// # Examples
///
/// ```
/// use spanner_graph::flow::FlowNetwork;
///
/// // Two disjoint routes from 0 to 3.
/// let mut net = FlowNetwork::new(4);
/// net.add_arc(0, 1, 1);
/// net.add_arc(1, 3, 1);
/// net.add_arc(0, 2, 1);
/// net.add_arc(2, 3, 1);
/// assert_eq!(net.max_flow(0, 3, u32::MAX), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    adj: Vec<Vec<Arc>>,
    level: Vec<i32>,
    iter: Vec<usize>,
    queue: VecDeque<usize>,
}

impl FlowNetwork {
    /// An empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
            queue: VecDeque::new(),
        }
    }

    /// Clears the network back to `n` isolated nodes, keeping every
    /// allocation (outer vector, per-node arc vectors, BFS scratch).
    ///
    /// The cut shortcut inside the FT-greedy fault oracle solves one
    /// bounded max-flow per oracle query; rebuilding into a reset network
    /// instead of a fresh one removes all of that loop's allocator
    /// traffic after warm-up. Arc insertion order — and therefore the
    /// specific minimum cut the solver reports — is unaffected.
    pub fn reset(&mut self, n: usize) {
        if self.adj.len() != n {
            self.adj.resize_with(n, Vec::new);
            self.level.resize(n, -1);
            self.iter.resize(n, 0);
        }
        for arcs in &mut self.adj {
            arcs.clear();
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `from → to` with capacity `cap` (and its
    /// zero-capacity reverse arc).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u32) {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "arc endpoint out of range"
        );
        let rev_from = self.adj[to].len() as u32;
        let rev_to = self.adj[from].len() as u32;
        self.adj[from].push(Arc {
            to: to as u32,
            cap,
            rev: rev_from,
        });
        self.adj[to].push(Arc {
            to: from as u32,
            cap: 0,
            rev: rev_to,
        });
    }

    /// Adds an undirected unit edge: capacity 1 in both directions.
    pub fn add_undirected_unit(&mut self, u: usize, v: usize) {
        self.add_arc(u, v, 1);
        self.add_arc(v, u, 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push_back(s);
        while let Some(v) = self.queue.pop_front() {
            for arc in &self.adj[v] {
                if arc.cap > 0 && self.level[arc.to as usize] < 0 {
                    self.level[arc.to as usize] = self.level[v] + 1;
                    self.queue.push_back(arc.to as usize);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, pushed: u32) -> u32 {
        if v == t {
            return pushed;
        }
        while self.iter[v] < self.adj[v].len() {
            let i = self.iter[v];
            let (to, cap, rev) = {
                let arc = &self.adj[v][i];
                (arc.to as usize, arc.cap, arc.rev as usize)
            };
            if cap > 0 && self.level[to] == self.level[v] + 1 {
                let got = self.dfs(to, t, pushed.min(cap));
                if got > 0 {
                    self.adj[v][i].cap -= got;
                    self.adj[to][rev].cap += got;
                    return got;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// After [`FlowNetwork::max_flow`] has run (without hitting its
    /// limit), returns the source side of a minimum cut: the set of nodes
    /// reachable from `s` in the residual network.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut reachable = vec![false; self.adj.len()];
        let mut queue = VecDeque::new();
        reachable[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for arc in &self.adj[v] {
                if arc.cap > 0 && !reachable[arc.to as usize] {
                    reachable[arc.to as usize] = true;
                    queue.push_back(arc.to as usize);
                }
            }
        }
        reachable
    }

    /// [`FlowNetwork::min_cut_side`] writing into a reusable buffer
    /// (cleared and refilled; no allocation once capacity suffices —
    /// the `&mut self` receiver lets the residual BFS reuse the
    /// network's own queue).
    pub fn min_cut_side_into(&mut self, s: usize, reachable: &mut Vec<bool>) {
        reachable.clear();
        reachable.resize(self.adj.len(), false);
        self.queue.clear();
        reachable[s] = true;
        self.queue.push_back(s);
        while let Some(v) = self.queue.pop_front() {
            for arc in &self.adj[v] {
                if arc.cap > 0 && !reachable[arc.to as usize] {
                    reachable[arc.to as usize] = true;
                    self.queue.push_back(arc.to as usize);
                }
            }
        }
    }

    /// Computes the max `s→t` flow, stopping early once `limit` is
    /// reached (pass `u32::MAX` for the true maximum). Destroys the
    /// network's capacities (clone first to reuse).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range or `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize, limit: u32) -> u32 {
        assert!(
            s < self.adj.len() && t < self.adj.len(),
            "terminal out of range"
        );
        assert_ne!(s, t, "source equals sink");
        let mut flow = 0;
        while flow < limit && self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let pushed = self.dfs(s, t, limit - flow);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
                if flow >= limit {
                    break;
                }
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_parallel_flows() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3, then a crossing arc 1 -> 2.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 3, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(2, 3, 2);
        net.add_arc(1, 2, 1);
        assert_eq!(net.max_flow(0, 3, u32::MAX), 3);
    }

    #[test]
    fn bottleneck_respected() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 10);
        net.add_arc(1, 2, 4);
        assert_eq!(net.max_flow(0, 2, u32::MAX), 4);
    }

    #[test]
    fn limit_stops_early() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 100);
        assert_eq!(net.max_flow(0, 1, 7), 7);
    }

    #[test]
    fn disconnected_flow_is_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 5);
        net.add_arc(2, 3, 5);
        assert_eq!(net.max_flow(0, 3, u32::MAX), 0);
    }

    #[test]
    fn undirected_unit_edges_count_both_ways() {
        // A path 0 - 1 - 2 of undirected unit edges has one unit of flow.
        let mut net = FlowNetwork::new(3);
        net.add_undirected_unit(0, 1);
        net.add_undirected_unit(1, 2);
        assert_eq!(net.clone().max_flow(0, 2, u32::MAX), 1);
        // And flow can also run the other way.
        assert_eq!(net.max_flow(2, 0, u32::MAX), 1);
    }

    #[test]
    fn classic_worked_example() {
        // CLRS-style network with known max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 16);
        net.add_arc(0, 2, 13);
        net.add_arc(1, 2, 10);
        net.add_arc(2, 1, 4);
        net.add_arc(1, 3, 12);
        net.add_arc(3, 2, 9);
        net.add_arc(2, 4, 14);
        net.add_arc(4, 3, 7);
        net.add_arc(3, 5, 20);
        net.add_arc(4, 5, 4);
        assert_eq!(net.max_flow(0, 5, u32::MAX), 23);
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn same_terminal_rejected() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 1);
        let _ = net.max_flow(0, 0, 1);
    }

    #[test]
    fn min_cut_side_separates_terminals() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 1);
        net.add_arc(2, 3, 5);
        let flow = net.max_flow(0, 3, u32::MAX);
        assert_eq!(flow, 1);
        let side = net.min_cut_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // Exactly one saturated arc crosses the cut.
        let crossing = [(0usize, 1usize), (1, 2), (2, 3)]
            .iter()
            .filter(|(a, b)| side[*a] && !side[*b])
            .count();
        assert_eq!(crossing, 1);
    }
}
