//! Graphviz DOT export for debugging and example output.

use crate::{FaultMask, Graph};
use std::fmt::Write as _;

/// Renders `graph` in Graphviz DOT syntax.
///
/// Unit-weight edges omit the label; weighted edges are labelled.
///
/// # Examples
///
/// ```
/// use spanner_graph::{dot, Graph};
///
/// let g = Graph::from_edges(2, [(0, 1)])?;
/// let out = dot::to_dot(&g, "demo");
/// assert!(out.contains("graph demo {"));
/// assert!(out.contains("v0 -- v1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_dot(graph: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in graph.nodes() {
        let _ = writeln!(out, "  {v};");
    }
    for (_, e) in graph.edges() {
        if e.weight() == crate::Weight::UNIT {
            let _ = writeln!(out, "  {} -- {};", e.u(), e.v());
        } else {
            let _ = writeln!(out, "  {} -- {} [label=\"{}\"];", e.u(), e.v(), e.weight());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders `graph` with faulted vertices/edges highlighted (dashed, red).
pub fn to_dot_with_faults(graph: &Graph, mask: &FaultMask, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in graph.nodes() {
        if mask.is_vertex_faulted(v) {
            let _ = writeln!(out, "  {v} [color=red, style=dashed];");
        } else {
            let _ = writeln!(out, "  {v};");
        }
    }
    for (id, e) in graph.edges() {
        let style = if mask.is_edge_faulted(id) {
            " [color=red, style=dashed]"
        } else {
            ""
        };
        let _ = writeln!(out, "  {} -- {}{};", e.u(), e.v(), style);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeId, NodeId};

    #[test]
    fn weighted_edges_get_labels() {
        let g = Graph::from_weighted_edges(2, [(0, 1, 9)]).unwrap();
        let out = to_dot(&g, "g");
        assert!(out.contains("label=\"9\""));
    }

    #[test]
    fn unit_edges_have_no_labels() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let out = to_dot(&g, "g");
        assert!(!out.contains("label"));
    }

    #[test]
    fn faults_are_highlighted() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(0));
        mask.fault_edge(EdgeId::new(1));
        let out = to_dot_with_faults(&g, &mask, "g");
        assert!(out.contains("v0 [color=red"));
        assert!(out.contains("v1 -- v2 [color=red"));
        assert!(out.contains("v0 -- v1;"));
    }
}
