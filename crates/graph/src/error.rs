//! Error types for graph construction and queries.

use crate::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and mutation.
///
/// # Examples
///
/// ```
/// use spanner_graph::{Graph, GraphError, NodeId, Weight};
///
/// let mut g = Graph::new(2);
/// let err = g
///     .try_add_edge(NodeId::new(0), NodeId::new(0), Weight::UNIT)
///     .unwrap_err();
/// assert!(matches!(err, GraphError::SelfLoop { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a vertex outside `0..node_count`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// An edge id referenced an edge outside `0..edge_count`.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// The number of edges in the graph.
        edge_count: usize,
    },
    /// Attempted to add an edge from a vertex to itself.
    SelfLoop {
        /// The vertex at both endpoints.
        node: NodeId,
    },
    /// Attempted to add a second edge between the same pair of vertices.
    DuplicateEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The already-present edge.
        existing: EdgeId,
    },
    /// Attempted to add an edge with weight zero.
    ZeroWeight {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::EdgeOutOfRange { edge, edge_count } => {
                write!(f, "edge {edge} out of range (graph has {edge_count} edges)")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} is not allowed")
            }
            GraphError::DuplicateEdge { u, v, existing } => {
                write!(f, "edge between {u} and {v} already exists as {existing}")
            }
            GraphError::ZeroWeight { u, v } => {
                write!(
                    f,
                    "edge between {u} and {v} has zero weight; weights must be positive"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::SelfLoop {
            node: NodeId::new(4),
        };
        assert_eq!(e.to_string(), "self-loop at v4 is not allowed");
        let e = GraphError::NodeOutOfRange {
            node: NodeId::new(9),
            node_count: 5,
        };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::DuplicateEdge {
            u: NodeId::new(0),
            v: NodeId::new(1),
            existing: EdgeId::new(2),
        };
        assert!(e.to_string().contains("already exists"));
        let e = GraphError::EdgeOutOfRange {
            edge: EdgeId::new(3),
            edge_count: 1,
        };
        assert!(e.to_string().contains("edge e3"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
