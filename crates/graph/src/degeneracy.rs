//! Degeneracy (k-core) ordering.
//!
//! The degeneracy of a graph — the largest minimum degree of any subgraph
//! — is the sparsity certificate behind many spanner facts: a graph with
//! `m ≤ c·n^{1+1/k}` edges has degeneracy `O(n^{1/k})`, and greedy spanner
//! outputs inherit exactly that shape. The ordering itself (repeatedly
//! remove a minimum-degree vertex) is the standard linear-time bucket
//! algorithm of Matula–Beck.

use crate::{FaultMask, Graph, NodeId};

/// Result of [`degeneracy_ordering`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Degeneracy {
    /// The degeneracy (max core number).
    pub degeneracy: usize,
    /// Vertices in removal order (each has ≤ `degeneracy` later neighbors).
    pub order: Vec<NodeId>,
    /// Core number per vertex (`usize::MAX` for faulted vertices).
    pub core_numbers: Vec<usize>,
}

/// Computes the degeneracy ordering of `graph ∖ mask` in O(n + m).
///
/// # Examples
///
/// ```
/// use spanner_graph::{degeneracy::degeneracy_ordering, generators, FaultMask};
///
/// let g = generators::complete(6);
/// let d = degeneracy_ordering(&g, &FaultMask::for_graph(&g));
/// assert_eq!(d.degeneracy, 5);
/// let tree = generators::path(6);
/// let d = degeneracy_ordering(&tree, &FaultMask::for_graph(&tree));
/// assert_eq!(d.degeneracy, 1);
/// ```
pub fn degeneracy_ordering(graph: &Graph, mask: &FaultMask) -> Degeneracy {
    let n = graph.node_count();
    let mut degree: Vec<usize> = (0..n)
        .map(|v| {
            let v = NodeId::new(v);
            if mask.is_vertex_faulted(v) {
                usize::MAX
            } else {
                graph
                    .neighbors(v)
                    .filter(|(to, eid)| mask.allows(*to, *eid))
                    .count()
            }
        })
        .collect();
    let max_degree = degree
        .iter()
        .filter(|d| **d != usize::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_degree + 1];
    for (v, d) in degree.iter().enumerate() {
        if *d != usize::MAX {
            buckets[*d].push(v);
        }
    }
    let mut removed = vec![false; n];
    let mut order = Vec::new();
    let mut core_numbers = vec![usize::MAX; n];
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    let live = degree.iter().filter(|d| **d != usize::MAX).count();
    while order.len() < live {
        // Find the lowest non-empty bucket (cursor can go down by one per
        // removal, so reset lazily).
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let Some(&v) = buckets.get(cursor).and_then(|b| b.last()) else {
            break;
        };
        buckets[cursor].pop();
        if removed[v] || degree[v] != cursor {
            // Stale bucket entry; skip.
            continue;
        }
        removed[v] = true;
        degeneracy = degeneracy.max(cursor);
        core_numbers[v] = degeneracy;
        order.push(NodeId::new(v));
        for (to, eid) in graph.neighbors(NodeId::new(v)) {
            if !mask.allows(to, eid) || removed[to.index()] {
                continue;
            }
            let d = degree[to.index()];
            degree[to.index()] = d - 1;
            buckets[d - 1].push(to.index());
            cursor = cursor.min(d - 1);
        }
    }
    Degeneracy {
        degeneracy,
        order,
        core_numbers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn degeneracy_of(g: &Graph) -> usize {
        degeneracy_ordering(g, &FaultMask::for_graph(g)).degeneracy
    }

    #[test]
    fn classic_values() {
        assert_eq!(degeneracy_of(&generators::complete(7)), 6);
        assert_eq!(degeneracy_of(&generators::path(9)), 1);
        assert_eq!(degeneracy_of(&generators::cycle(9)), 2);
        assert_eq!(degeneracy_of(&generators::grid(4, 5)), 2);
        assert_eq!(degeneracy_of(&generators::star(8)), 1);
        assert_eq!(degeneracy_of(&generators::complete_bipartite(3, 9)), 3);
        assert_eq!(degeneracy_of(&generators::petersen()), 3);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(degeneracy_of(&Graph::new(0)), 0);
        assert_eq!(degeneracy_of(&Graph::new(5)), 0);
    }

    #[test]
    fn ordering_certifies_the_degeneracy() {
        let g = generators::complete_bipartite(4, 7);
        let mask = FaultMask::for_graph(&g);
        let d = degeneracy_ordering(&g, &mask);
        // Each vertex has at most `degeneracy` neighbors later in the order.
        let position: std::collections::HashMap<NodeId, usize> =
            d.order.iter().enumerate().map(|(i, v)| (*v, i)).collect();
        for (i, v) in d.order.iter().enumerate() {
            let later = g.neighbors(*v).filter(|(to, _)| position[to] > i).count();
            assert!(later <= d.degeneracy, "{v} has {later} later neighbors");
        }
    }

    #[test]
    fn faults_lower_the_degeneracy() {
        let g = generators::complete(6);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(0));
        mask.fault_vertex(NodeId::new(1));
        let d = degeneracy_ordering(&g, &mask);
        assert_eq!(d.degeneracy, 3); // K4 remains
        assert_eq!(d.order.len(), 4);
        assert_eq!(d.core_numbers[NodeId::new(0).index()], usize::MAX);
    }

    #[test]
    fn greedy_spanner_outputs_have_low_degeneracy() {
        // A 3-spanner of K40 has girth > 4 and so average degree O(sqrt n);
        // its degeneracy must be far below the input's 39.
        use crate::FaultMask;
        let g = generators::complete(40);
        // Build a girth->4 subgraph the cheap way: bipartite double cover
        // style check via complete_bipartite instead would be trivial; use
        // the real greedy from the core crate in integration tests. Here:
        // sanity only on the input.
        let d = degeneracy_ordering(&g, &FaultMask::for_graph(&g));
        assert_eq!(d.degeneracy, 39);
    }
}
