//! Shared, alignment-aware byte buffers — the backing store for in-place
//! (zero-copy) artifact views.
//!
//! The v2 artifact layout (`docs/ARTIFACT_FORMAT.md`) lays every section
//! out at an 8-byte-aligned offset so the packed CSR tables can be read
//! directly from the file bytes. A [`SharedBytes`] is the cheaply
//! clonable handle those views hold: an `Arc` over any byte provider —
//! an `mmap(2)` region, an aligned heap copy, a `Vec` a test built — so
//! a frozen artifact and every view borrowed from it share one buffer
//! and one page cache.
//!
//! Two invariants the in-place readers rely on:
//!
//! * **Stability.** A provider must return the same slice (same address,
//!   same length, same contents) on every call for as long as any clone
//!   of the `SharedBytes` is alive. Validators check offsets once and
//!   then index without re-checking.
//! * **Alignment.** In-place views require the buffer base to sit on an
//!   8-byte boundary ([`BUFFER_ALIGN`]). `mmap` regions are page-aligned
//!   and satisfy this for free; [`SharedBytes::copy_aligned`] produces a
//!   conforming heap copy for everything else. Validators *verify* the
//!   alignment (`artifact/misaligned-section`) rather than assume it, so
//!   a misaligned provider fails closed instead of degrading.
//!
//! # Examples
//!
//! ```
//! use spanner_graph::bytes::SharedBytes;
//!
//! let shared = SharedBytes::copy_aligned(&[1, 2, 3, 4]);
//! assert_eq!(shared.as_slice(), &[1, 2, 3, 4]);
//! assert!(shared.is_aligned());
//! let clone = shared.clone(); // shares the same buffer
//! assert_eq!(clone.as_slice().as_ptr(), shared.as_slice().as_ptr());
//! ```

use std::fmt;
use std::sync::Arc;

/// Base alignment (bytes) an in-place artifact buffer must satisfy.
pub const BUFFER_ALIGN: usize = 8;

/// A cheaply clonable, shared, immutable byte buffer.
///
/// See the module docs for the stability and alignment contract.
#[derive(Clone)]
pub struct SharedBytes {
    source: Arc<dyn AsRef<[u8]> + Send + Sync>,
}

impl SharedBytes {
    /// Wraps an existing byte provider (an mmap region, a pre-aligned
    /// buffer, …) without copying.
    ///
    /// The provider must uphold the stability contract in the module
    /// docs; alignment is checked by the consumers that need it.
    pub fn from_source(source: Arc<dyn AsRef<[u8]> + Send + Sync>) -> Self {
        SharedBytes { source }
    }

    /// Copies `bytes` into a fresh heap buffer whose base address is
    /// guaranteed to satisfy [`BUFFER_ALIGN`] — the portable fallback
    /// when no page-aligned mapping is available.
    pub fn copy_aligned(bytes: &[u8]) -> Self {
        SharedBytes::from_source(Arc::new(AlignedBytes::copy_from(bytes)))
    }

    /// The shared bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.source.as_ref().as_ref()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Whether the buffer base sits on a [`BUFFER_ALIGN`] boundary.
    pub fn is_aligned(&self) -> bool {
        self.as_slice().as_ptr() as usize % BUFFER_ALIGN == 0
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedBytes")
            .field("len", &self.len())
            .field("aligned", &self.is_aligned())
            .finish()
    }
}

/// A heap copy of a byte string whose first payload byte is guaranteed
/// to sit on a [`BUFFER_ALIGN`] boundary.
///
/// `Vec<u8>` only guarantees 1-byte alignment, so the copy over-allocates
/// by one alignment quantum and starts the payload at the first aligned
/// address inside the allocation — all in safe code (the buffer is never
/// reallocated after construction, so the computed start offset stays
/// valid).
pub struct AlignedBytes {
    buf: Vec<u8>,
    start: usize,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into an aligned buffer.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut buf = vec![0u8; bytes.len() + BUFFER_ALIGN];
        let residue = buf.as_ptr() as usize % BUFFER_ALIGN;
        let start = (BUFFER_ALIGN - residue) % BUFFER_ALIGN;
        buf[start..start + bytes.len()].copy_from_slice(bytes);
        AlignedBytes {
            buf,
            start,
            len: bytes.len(),
        }
    }

    /// The aligned payload.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for AlignedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBytes")
            .field("len", &self.len)
            .finish()
    }
}

/// Reads a little-endian `u32` at `offset`.
///
/// # Panics
///
/// Panics if `offset + 4` exceeds the slice — callers pass offsets a
/// validator has already bounds-checked.
#[inline]
pub fn read_u32_at(bytes: &[u8], offset: usize) -> u32 {
    let b = &bytes[offset..offset + 4];
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Reads a little-endian `u64` at `offset`.
///
/// # Panics
///
/// Panics if `offset + 8` exceeds the slice — callers pass offsets a
/// validator has already bounds-checked.
#[inline]
pub fn read_u64_at(bytes: &[u8], offset: usize) -> u64 {
    let b = &bytes[offset..offset + 8];
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_aligned_preserves_content_and_aligns() {
        for len in [0usize, 1, 7, 8, 9, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let shared = SharedBytes::copy_aligned(&data);
            assert_eq!(shared.as_slice(), &data[..]);
            assert!(shared.is_aligned(), "len {len} copy must be aligned");
            assert_eq!(shared.len(), len);
            assert_eq!(shared.is_empty(), len == 0);
        }
    }

    #[test]
    fn clones_share_the_same_buffer() {
        let shared = SharedBytes::copy_aligned(&[9u8; 64]);
        let clone = shared.clone();
        assert_eq!(shared.as_slice().as_ptr(), clone.as_slice().as_ptr());
    }

    #[test]
    fn from_source_wraps_without_copying() {
        let vec: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(vec![1u8, 2, 3]);
        let shared = SharedBytes::from_source(vec);
        assert_eq!(shared.as_slice(), &[1, 2, 3]);
        // Alignment is a property of the provider, not a promise of the
        // wrapper: a Vec-backed source may or may not be aligned, and
        // consumers must check.
        let _ = shared.is_aligned();
    }

    #[test]
    fn le_readers_match_manual_decoding() {
        let mut bytes = vec![0u8; 16];
        bytes[4..8].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        bytes[8..16].copy_from_slice(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        assert_eq!(read_u32_at(&bytes, 4), 0xdead_beef);
        assert_eq!(read_u64_at(&bytes, 8), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn debug_formats_are_compact() {
        let shared = SharedBytes::copy_aligned(&[0u8; 5]);
        let dbg = format!("{shared:?}");
        assert!(dbg.contains("len: 5"), "{dbg}");
    }
}
