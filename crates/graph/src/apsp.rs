//! All-pairs shortest paths.
//!
//! Two implementations with different trade-offs, both fault-mask aware:
//!
//! * [`floyd_warshall`] — O(n³), dense matrix, simple enough to serve as
//!   the reference implementation the property tests compare Dijkstra
//!   against;
//! * [`johnson`] — repeated Dijkstra, O(n·m log n), the right choice on
//!   the sparse graphs spanners produce. (No potentials are needed: all
//!   weights are positive by construction.)
//!
//! The distance matrix also powers diameter/eccentricity reporting in the
//! examples.

use crate::{DijkstraEngine, Dist, FaultMask, Graph, NodeId};

/// A dense all-pairs distance matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<Dist>,
}

impl DistanceMatrix {
    /// The distance from `u` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> Dist {
        self.data[u.index() * self.n + v.index()]
    }

    /// Number of vertices the matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The largest finite distance, or `None` if the graph (minus faults)
    /// is disconnected or empty.
    pub fn diameter(&self, mask: &FaultMask) -> Option<Dist> {
        let mut best = Dist::ZERO;
        let mut any = false;
        for u in 0..self.n {
            if mask.is_vertex_faulted(NodeId::new(u)) {
                continue;
            }
            for v in 0..self.n {
                if u == v || mask.is_vertex_faulted(NodeId::new(v)) {
                    continue;
                }
                any = true;
                let d = self.data[u * self.n + v];
                if !d.is_finite() {
                    return None;
                }
                if d > best {
                    best = d;
                }
            }
        }
        any.then_some(best)
    }
}

/// Floyd–Warshall over `graph ∖ mask`. O(n³) time, O(n²) space.
///
/// # Examples
///
/// ```
/// use spanner_graph::{apsp, Dist, FaultMask, Graph, NodeId};
///
/// let g = Graph::from_weighted_edges(3, [(0, 1, 2), (1, 2, 3)])?;
/// let m = apsp::floyd_warshall(&g, &FaultMask::for_graph(&g));
/// assert_eq!(m.get(NodeId::new(0), NodeId::new(2)), Dist::finite(5));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn floyd_warshall(graph: &Graph, mask: &FaultMask) -> DistanceMatrix {
    let n = graph.node_count();
    let mut data = vec![Dist::INFINITE; n * n];
    for v in 0..n {
        if !mask.is_vertex_faulted(NodeId::new(v)) {
            data[v * n + v] = Dist::ZERO;
        }
    }
    for (id, e) in graph.edges() {
        if mask.is_edge_faulted(id)
            || mask.is_vertex_faulted(e.u())
            || mask.is_vertex_faulted(e.v())
        {
            continue;
        }
        let (u, v) = (e.u().index(), e.v().index());
        let w = e.weight().to_dist();
        if w < data[u * n + v] {
            data[u * n + v] = w;
            data[v * n + u] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = data[i * n + k];
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let through = dik + data[k * n + j];
                if through < data[i * n + j] {
                    data[i * n + j] = through;
                }
            }
        }
    }
    DistanceMatrix { n, data }
}

/// Repeated-Dijkstra APSP over `graph ∖ mask` (Johnson's algorithm
/// without reweighting — weights are already positive).
pub fn johnson(graph: &Graph, mask: &FaultMask) -> DistanceMatrix {
    let n = graph.node_count();
    let mut data = vec![Dist::INFINITE; n * n];
    let mut engine = DijkstraEngine::new();
    for s in graph.nodes() {
        if mask.is_vertex_faulted(s) {
            continue;
        }
        let row = engine.sssp(graph, s, mask);
        data[s.index() * n..(s.index() + 1) * n].copy_from_slice(&row);
    }
    DistanceMatrix { n, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::EdgeId;

    #[test]
    fn fw_and_johnson_agree_on_weighted_graph() {
        let g = Graph::from_weighted_edges(
            5,
            [
                (0, 1, 2),
                (1, 2, 2),
                (2, 3, 2),
                (3, 4, 2),
                (4, 0, 1),
                (1, 3, 9),
            ],
        )
        .unwrap();
        let mask = FaultMask::for_graph(&g);
        let a = floyd_warshall(&g, &mask);
        let b = johnson(&g, &mask);
        assert_eq!(a, b);
    }

    #[test]
    fn agreement_under_faults() {
        let g = generators::grid(3, 3);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(4)); // center
        mask.fault_edge(EdgeId::new(0));
        let a = floyd_warshall(&g, &mask);
        let b = johnson(&g, &mask);
        assert_eq!(a, b);
    }

    #[test]
    fn diameter_of_path() {
        let g = generators::path(5);
        let mask = FaultMask::for_graph(&g);
        let m = floyd_warshall(&g, &mask);
        assert_eq!(m.diameter(&mask), Some(Dist::finite(4)));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let m = johnson(&g, &mask);
        assert_eq!(m.diameter(&mask), None);
    }

    #[test]
    fn diameter_ignores_faulted_vertices() {
        let g = generators::path(4); // 0-1-2-3
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(3));
        let m = johnson(&g, &mask);
        assert_eq!(m.diameter(&mask), Some(Dist::finite(2)));
    }

    #[test]
    fn empty_graph_diameter() {
        let g = Graph::new(0);
        let mask = FaultMask::for_graph(&g);
        let m = floyd_warshall(&g, &mask);
        assert_eq!(m.diameter(&mask), None);
        assert_eq!(m.node_count(), 0);
    }

    #[test]
    fn spanner_use_case_diameter_grows() {
        // A 3-spanner's diameter is at most 3x the original's.
        let g = generators::complete(10);
        let mask = FaultMask::for_graph(&g);
        let original = floyd_warshall(&g, &mask).diameter(&mask).unwrap();
        assert_eq!(original, Dist::finite(1));
    }
}
