//! Fault masks: logically deleting vertices and edges without rebuilding.
//!
//! Fault tolerant spanner algorithms evaluate `dist_{H ∖ F}(u, v)` for huge
//! numbers of candidate fault sets `F`. Physically deleting vertices/edges
//! would mean copying the graph per candidate; instead, traversals accept a
//! [`FaultMask`] that marks vertices and edges as *faulted* and skips them.

use crate::{BitSet, EdgeId, Graph, NodeId};
use std::fmt;

/// A set of faulted (logically deleted) vertices and edges over a graph of
/// known size.
///
/// A faulted vertex removes the vertex and implicitly all incident edges; a
/// faulted edge removes just that edge. Traversals (Dijkstra, BFS) never
/// enter faulted vertices and never cross faulted edges.
///
/// # Examples
///
/// ```
/// use spanner_graph::{FaultMask, Graph, NodeId};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// let mut mask = FaultMask::for_graph(&g);
/// mask.fault_vertex(NodeId::new(1));
/// assert!(mask.is_vertex_faulted(NodeId::new(1)));
/// assert_eq!(mask.fault_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct FaultMask {
    vertices: BitSet,
    edges: BitSet,
}

impl FaultMask {
    /// Creates an empty mask sized for `graph`.
    pub fn for_graph(graph: &Graph) -> Self {
        FaultMask {
            vertices: BitSet::new(graph.node_count()),
            edges: BitSet::new(graph.edge_count()),
        }
    }

    /// Creates an empty mask with explicit capacities.
    pub fn with_capacity(node_count: usize, edge_count: usize) -> Self {
        FaultMask {
            vertices: BitSet::new(node_count),
            edges: BitSet::new(edge_count),
        }
    }

    /// Marks `node` faulted. Returns `true` if it was not already faulted.
    pub fn fault_vertex(&mut self, node: NodeId) -> bool {
        if node.index() >= self.vertices.capacity() {
            self.vertices.grow(node.index() + 1);
        }
        self.vertices.insert(node.index())
    }

    /// Marks `edge` faulted. Returns `true` if it was not already faulted.
    pub fn fault_edge(&mut self, edge: EdgeId) -> bool {
        if edge.index() >= self.edges.capacity() {
            self.edges.grow(edge.index() + 1);
        }
        self.edges.insert(edge.index())
    }

    /// Clears the fault on `node`. Returns `true` if it was faulted.
    pub fn restore_vertex(&mut self, node: NodeId) -> bool {
        node.index() < self.vertices.capacity() && self.vertices.remove(node.index())
    }

    /// Clears the fault on `edge`. Returns `true` if it was faulted.
    pub fn restore_edge(&mut self, edge: EdgeId) -> bool {
        edge.index() < self.edges.capacity() && self.edges.remove(edge.index())
    }

    /// Returns `true` if `node` is faulted.
    #[inline]
    pub fn is_vertex_faulted(&self, node: NodeId) -> bool {
        node.index() < self.vertices.capacity() && self.vertices.contains(node.index())
    }

    /// Returns `true` if `edge` is faulted.
    #[inline]
    pub fn is_edge_faulted(&self, edge: EdgeId) -> bool {
        edge.index() < self.edges.capacity() && self.edges.contains(edge.index())
    }

    /// Returns `true` if crossing `edge` from a live vertex into `to` is
    /// allowed (neither the edge nor the target vertex is faulted).
    #[inline]
    pub fn allows(&self, to: NodeId, edge: EdgeId) -> bool {
        !self.is_edge_faulted(edge) && !self.is_vertex_faulted(to)
    }

    /// Total number of faults (vertices + edges).
    pub fn fault_count(&self) -> usize {
        self.vertices.len() + self.edges.len()
    }

    /// Returns `true` if no faults are set.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// Removes all faults.
    pub fn clear(&mut self) {
        self.vertices.clear();
        self.edges.clear();
    }

    /// Clears all faults and guarantees capacity for a graph of
    /// `node_count` vertices and `edge_count` edges, reusing the existing
    /// allocation whenever possible. Returns `true` if backing storage had
    /// to grow — the "scratch rebuild" signal long-lived oracles count to
    /// prove their masks are recycled rather than rebuilt per query.
    pub fn reset_for(&mut self, node_count: usize, edge_count: usize) -> bool {
        let grew = self.vertices.grow_tracked(node_count) | self.edges.grow_tracked(edge_count);
        self.clear();
        grew
    }

    /// Makes `self` an exact copy of `other`, reusing allocations (the
    /// in-place analogue of `clone` for packing scratch masks).
    pub fn copy_from(&mut self, other: &FaultMask) {
        self.vertices.copy_from(&other.vertices);
        self.edges.copy_from(&other.edges);
    }

    /// Iterates over faulted vertices in increasing id order.
    pub fn faulted_vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.vertices.iter().map(NodeId::new)
    }

    /// Iterates over faulted edges in increasing id order.
    pub fn faulted_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().map(EdgeId::new)
    }
}

impl fmt::Debug for FaultMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultMask")
            .field("vertices", &self.faulted_vertices().collect::<Vec<_>>())
            .field("edges", &self.faulted_edges().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn empty_mask_allows_everything() {
        let g = c4();
        let mask = FaultMask::for_graph(&g);
        assert!(mask.is_empty());
        for (id, e) in g.edges() {
            assert!(mask.allows(e.u(), id));
            assert!(mask.allows(e.v(), id));
        }
    }

    #[test]
    fn vertex_fault_blocks_entry() {
        let g = c4();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(2));
        assert!(!mask.allows(NodeId::new(2), EdgeId::new(1)));
        assert!(mask.allows(NodeId::new(1), EdgeId::new(1)));
    }

    #[test]
    fn edge_fault_blocks_crossing() {
        let g = c4();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_edge(EdgeId::new(0));
        assert!(!mask.allows(NodeId::new(1), EdgeId::new(0)));
        assert!(mask.allows(NodeId::new(1), EdgeId::new(1)));
    }

    #[test]
    fn restore_undoes_fault() {
        let g = c4();
        let mut mask = FaultMask::for_graph(&g);
        assert!(mask.fault_vertex(NodeId::new(0)));
        assert!(!mask.fault_vertex(NodeId::new(0)), "double fault");
        assert!(mask.restore_vertex(NodeId::new(0)));
        assert!(!mask.restore_vertex(NodeId::new(0)));
        assert!(mask.is_empty());
    }

    #[test]
    fn fault_count_sums_both_kinds() {
        let g = c4();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(0));
        mask.fault_edge(EdgeId::new(2));
        assert_eq!(mask.fault_count(), 2);
        assert_eq!(
            mask.faulted_vertices().collect::<Vec<_>>(),
            vec![NodeId::new(0)]
        );
        assert_eq!(
            mask.faulted_edges().collect::<Vec<_>>(),
            vec![EdgeId::new(2)]
        );
    }

    #[test]
    fn mask_grows_for_out_of_range_ids() {
        let mut mask = FaultMask::with_capacity(2, 2);
        mask.fault_vertex(NodeId::new(100));
        assert!(mask.is_vertex_faulted(NodeId::new(100)));
        assert!(!mask.is_vertex_faulted(NodeId::new(99)));
        mask.fault_edge(EdgeId::new(50));
        assert!(mask.is_edge_faulted(EdgeId::new(50)));
    }

    #[test]
    fn reset_for_reports_growth_only_once() {
        let mut mask = FaultMask::with_capacity(0, 0);
        assert!(mask.reset_for(100, 100), "first sizing must grow");
        mask.fault_vertex(NodeId::new(3));
        assert!(!mask.reset_for(100, 100), "same size must reuse");
        assert!(mask.is_empty(), "reset_for must clear faults");
        // Word-granular: +1 bit within the same word is not a rebuild.
        assert!(!mask.reset_for(101, 101));
        assert!(mask.reset_for(1000, 10));
    }

    #[test]
    fn copy_from_matches_clone() {
        let g = c4();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(1));
        mask.fault_edge(EdgeId::new(2));
        let mut copy = FaultMask::with_capacity(0, 0);
        copy.copy_from(&mask);
        assert_eq!(copy, mask);
        assert_eq!(copy.fault_count(), 2);
        assert!(copy.is_vertex_faulted(NodeId::new(1)));
        assert!(copy.is_edge_faulted(EdgeId::new(2)));
    }

    #[test]
    fn clear_resets() {
        let g = c4();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(1));
        mask.fault_edge(EdgeId::new(1));
        mask.clear();
        assert!(mask.is_empty());
        assert_eq!(mask.fault_count(), 0);
    }
}
