//! Bounded-length simple cycle enumeration.
//!
//! Blocking sets (Definition 3 in Bodwin–Patel) must block *every* cycle on
//! at most `k + 1` edges. Verifying that property needs the actual list of
//! short cycles. Enumeration is inherently exponential in the worst case, so
//! the API takes a hard output cap and reports truncation honestly instead
//! of running away.
//!
//! Each cycle is enumerated exactly once, canonicalized by its maximum edge
//! id: for every edge `e = (u, v)` we search for `u → v` paths that use only
//! edges with smaller ids, then close them with `e`.

use crate::{BitSet, EdgeId, FaultMask, Graph, NodeId};
use std::collections::VecDeque;

/// A simple cycle: `nodes[i]` and `nodes[(i+1) % len]` are joined by
/// `edges[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cycle {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Cycle {
    /// Vertices around the cycle.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edges around the cycle.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges (equals number of vertices).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Cycles are never empty; provided for clippy-friendliness.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns `true` if `node` lies on the cycle.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Returns `true` if `edge` lies on the cycle.
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges.contains(&edge)
    }
}

/// Result of [`enumerate_short_cycles`].
#[derive(Clone, Debug, Default)]
pub struct CycleEnumeration {
    /// The cycles found, each of length at most the requested maximum.
    pub cycles: Vec<Cycle>,
    /// `true` if enumeration stopped early because the output cap was hit;
    /// the list is then a prefix, not the complete set.
    pub truncated: bool,
}

/// Enumerates every simple cycle of `graph ∖ mask` with at most `max_len`
/// edges, up to `limit` cycles.
///
/// Deterministic: cycles appear in increasing order of their maximum edge id.
///
/// # Examples
///
/// ```
/// use spanner_graph::{cycles, FaultMask, Graph};
///
/// // Two triangles sharing an edge: cycles C3, C3 and the outer C4.
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (1, 3), (3, 2)])?;
/// let mask = FaultMask::for_graph(&g);
/// let all = cycles::enumerate_short_cycles(&g, &mask, 4, 100);
/// assert!(!all.truncated);
/// assert_eq!(all.cycles.len(), 3);
/// let triangles = all.cycles.iter().filter(|c| c.len() == 3).count();
/// assert_eq!(triangles, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn enumerate_short_cycles(
    graph: &Graph,
    mask: &FaultMask,
    max_len: usize,
    limit: usize,
) -> CycleEnumeration {
    let mut out = CycleEnumeration::default();
    if max_len < 3 || limit == 0 {
        return out;
    }
    let n = graph.node_count();
    let mut dist_to_target = vec![u32::MAX; n];
    for (closing, edge) in graph.edges() {
        if mask.is_edge_faulted(closing)
            || mask.is_vertex_faulted(edge.u())
            || mask.is_vertex_faulted(edge.v())
        {
            continue;
        }
        let (src, dst) = (edge.u(), edge.v());
        // BFS distances to dst using only edges with id < closing, for
        // pruning the DFS: a partial path at p can only close a short cycle
        // if |p| + dist(p_end, dst) <= max_len - 1.
        bounded_bfs_to(graph, mask, dst, closing, max_len - 1, &mut dist_to_target);
        if dist_to_target[src.index()] == u32::MAX {
            continue;
        }
        let mut on_path = BitSet::new(n);
        on_path.insert(src.index());
        let mut path_nodes = vec![src];
        let mut path_edges: Vec<EdgeId> = Vec::new();
        if !dfs_close(
            graph,
            mask,
            closing,
            dst,
            max_len - 1,
            &dist_to_target,
            &mut on_path,
            &mut path_nodes,
            &mut path_edges,
            limit,
            &mut out,
        ) {
            return out; // truncated
        }
    }
    out
}

/// Counts short cycles without keeping them (same truncation contract).
pub fn count_short_cycles(
    graph: &Graph,
    mask: &FaultMask,
    max_len: usize,
    limit: usize,
) -> (usize, bool) {
    let e = enumerate_short_cycles(graph, mask, max_len, limit);
    (e.cycles.len(), e.truncated)
}

fn bounded_bfs_to(
    graph: &Graph,
    mask: &FaultMask,
    target: NodeId,
    closing: EdgeId,
    depth_cap: usize,
    dist: &mut [u32],
) {
    dist.fill(u32::MAX);
    dist[target.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(target);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        if dv as usize >= depth_cap {
            continue;
        }
        for (to, eid) in graph.neighbors(v) {
            if eid >= closing || !mask.allows(to, eid) {
                continue;
            }
            if dist[to.index()] == u32::MAX {
                dist[to.index()] = dv + 1;
                queue.push_back(to);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_close(
    graph: &Graph,
    mask: &FaultMask,
    closing: EdgeId,
    dst: NodeId,
    budget: usize,
    dist_to_target: &[u32],
    on_path: &mut BitSet,
    path_nodes: &mut Vec<NodeId>,
    path_edges: &mut Vec<EdgeId>,
    limit: usize,
    out: &mut CycleEnumeration,
) -> bool {
    let cur = *path_nodes.last().expect("path never empty");
    if cur == dst {
        // Need at least 2 edges on the path so the closed cycle is simple
        // (length >= 3; a 2-cycle would be a parallel edge).
        if path_edges.len() >= 2 {
            let mut edges = path_edges.clone();
            edges.push(closing);
            out.cycles.push(Cycle {
                nodes: path_nodes.clone(),
                edges,
            });
            if out.cycles.len() >= limit {
                out.truncated = true;
                return false;
            }
        }
        return true;
    }
    if path_edges.len() >= budget {
        return true;
    }
    let remaining = budget - path_edges.len();
    for (to, eid) in graph.neighbors(cur) {
        if eid >= closing || !mask.allows(to, eid) {
            continue;
        }
        if on_path.contains(to.index()) {
            continue;
        }
        let need = dist_to_target[to.index()];
        if need == u32::MAX || need as usize + 1 > remaining {
            continue;
        }
        on_path.insert(to.index());
        path_nodes.push(to);
        path_edges.push(eid);
        let keep_going = dfs_close(
            graph,
            mask,
            closing,
            dst,
            budget,
            dist_to_target,
            on_path,
            path_nodes,
            path_edges,
            limit,
            out,
        );
        path_edges.pop();
        path_nodes.pop();
        on_path.remove(to.index());
        if !keep_going {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn triangle_has_one_cycle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let e = enumerate_short_cycles(&g, &mask, 3, 10);
        assert_eq!(e.cycles.len(), 1);
        assert_eq!(e.cycles[0].len(), 3);
        assert!(!e.truncated);
    }

    #[test]
    fn k4_cycle_census() {
        // K4 has 4 triangles and 3 four-cycles.
        let g = k4();
        let mask = FaultMask::for_graph(&g);
        let e = enumerate_short_cycles(&g, &mask, 3, 100);
        assert_eq!(e.cycles.len(), 4);
        let e = enumerate_short_cycles(&g, &mask, 4, 100);
        assert_eq!(e.cycles.len(), 7);
        assert_eq!(e.cycles.iter().filter(|c| c.len() == 4).count(), 3);
    }

    #[test]
    fn cycles_are_simple_and_consistent() {
        let g = k4();
        let mask = FaultMask::for_graph(&g);
        for c in enumerate_short_cycles(&g, &mask, 4, 100).cycles {
            // Distinct vertices.
            let mut vs: Vec<_> = c.nodes().to_vec();
            vs.sort();
            vs.dedup();
            assert_eq!(vs.len(), c.len());
            // Edge i joins node i and node i+1 (cyclically).
            for i in 0..c.len() {
                let (a, b) = g.endpoints(c.edges()[i]);
                let (x, y) = (c.nodes()[i], c.nodes()[(i + 1) % c.len()]);
                assert!((a, b) == (x, y) || (a, b) == (y, x));
            }
        }
    }

    #[test]
    fn truncation_reported() {
        let g = k4();
        let mask = FaultMask::for_graph(&g);
        let e = enumerate_short_cycles(&g, &mask, 4, 2);
        assert!(e.truncated);
        assert_eq!(e.cycles.len(), 2);
    }

    #[test]
    fn forest_has_no_cycles() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let (count, truncated) = count_short_cycles(&g, &mask, 10, 100);
        assert_eq!(count, 0);
        assert!(!truncated);
    }

    #[test]
    fn mask_excludes_cycles() {
        let g = k4();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(3));
        // Only the triangle 0-1-2 remains.
        let e = enumerate_short_cycles(&g, &mask, 4, 100);
        assert_eq!(e.cycles.len(), 1);
        assert_eq!(e.cycles[0].len(), 3);
    }

    #[test]
    fn max_len_below_three_yields_nothing() {
        let g = k4();
        let mask = FaultMask::for_graph(&g);
        assert!(enumerate_short_cycles(&g, &mask, 2, 100).cycles.is_empty());
    }

    #[test]
    fn five_cycle_not_found_with_len_four() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert!(enumerate_short_cycles(&g, &mask, 4, 100).cycles.is_empty());
        assert_eq!(enumerate_short_cycles(&g, &mask, 5, 100).cycles.len(), 1);
    }

    #[test]
    fn cycle_helpers() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let c = enumerate_short_cycles(&g, &mask, 3, 10).cycles.remove(0);
        assert!(c.contains_node(NodeId::new(0)));
        assert!(c.contains_edge(EdgeId::new(2)));
        assert!(!c.is_empty());
    }
}
