//! Versioned binary containers — the persistence substrate for frozen
//! artifacts.
//!
//! The text edge list ([`io::to_edge_list`](crate::io::to_edge_list)) is
//! for humans and fixtures; serving replicas ship *binary* artifacts.
//! This module defines the container layout every `vft-spanner` binary
//! artifact uses (byte-level spec in `docs/ARTIFACT_FORMAT.md`):
//!
//! ```text
//! magic: [u8; 8]                      file-type tag, e.g. b"VFTGRAPH"
//! version: u32 LE                     format version (exact match required)
//! sections: repeated
//!     tag: u32 LE                     section identifier
//!     len: u64 LE                     payload length in bytes
//!     payload: [u8; len]
//! checksum: u64 LE                    FNV-1a 64 over all preceding bytes
//! ```
//!
//! Three properties the serving story depends on:
//!
//! * **Decoding never panics.** Every read is bounds-checked through
//!   [`ByteReader`]; truncated, corrupt, or crafted input surfaces as a
//!   typed [`BinaryError`] (the binary sibling of
//!   [`ParseGraphError`](crate::io::ParseGraphError)), never a panic or
//!   an abort — and claimed lengths are validated against the bytes
//!   actually present *before* any allocation is sized from them.
//! * **Version compatibility is explicit.** A decoder accepts exactly
//!   the versions it knows ([`BinaryError::UnsupportedVersion`]
//!   otherwise) and rejects section tags it does not recognize: a v1
//!   reader refuses v2 files with a typed error instead of
//!   misinterpreting them.
//! * **Encoding is canonical.** The same value always encodes to the
//!   same bytes (sections in fixed order, adjacency derived from the
//!   edge list), so `encode ∘ decode ∘ encode` is byte-identical and
//!   artifacts can be compared or content-addressed by hash.
//!
//! On top of the container sit the graph payload codecs:
//! [`write_view_payload`] serializes any [`GraphView`] as `node_count,
//! edge_count, (u, v, w)*`; [`read_frozen_csr_payload`] rebuilds a
//! packed [`FrozenCsr`] from it (adjacency reconstructed in the
//! [`GraphView`] determinism order — increasing edge id per vertex — so
//! the rebuilt layout traverses and tie-breaks exactly like the
//! original); [`read_graph_payload`] rebuilds a [`Graph`] enforcing the
//! simple-graph invariants. [`encode_frozen_csr`] / [`decode_frozen_csr`]
//! wrap the payload in a standalone `VFTGRAPH` container;
//! `spanner_core`'s `FrozenSpanner::encode`/`decode` embed the same
//! payloads as sections of the richer `VFTSPANR` artifact.
//!
//! # Examples
//!
//! ```
//! use spanner_graph::io::binary;
//! use spanner_graph::{generators, FrozenCsr, GraphView};
//!
//! let g = generators::petersen();
//! let frozen = FrozenCsr::from_view(&g);
//! let bytes = binary::encode_frozen_csr(&frozen);
//! let back = binary::decode_frozen_csr(&bytes)?;
//! assert_eq!(back.edge_count(), 15);
//! // Canonical: re-encoding reproduces the bytes exactly.
//! assert_eq!(binary::encode_frozen_csr(&back), bytes);
//! // Hostile input fails loudly, never panics.
//! assert!(binary::decode_frozen_csr(&bytes[..bytes.len() - 1]).is_err());
//! # Ok::<(), spanner_graph::io::binary::BinaryError>(())
//! ```

use crate::{FrozenCsr, Graph, GraphError, GraphView, NodeId, Weight};
use std::error::Error;
use std::fmt;

/// Magic bytes of a standalone frozen-graph container
/// ([`encode_frozen_csr`]).
pub const FROZEN_CSR_MAGIC: [u8; 8] = *b"VFTGRAPH";

/// Current version of the binary container format this module reads and
/// writes. Decoders require an exact match; see the compatibility policy
/// in `docs/ARTIFACT_FORMAT.md`.
pub const FORMAT_VERSION: u32 = 1;

/// Section tag of the adjacency payload in a [`FROZEN_CSR_MAGIC`] file.
const SECTION_ADJACENCY: u32 = 1;

/// Byte width of the container's header (magic + version).
const HEADER_LEN: usize = 8 + 4;

/// Byte width of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Errors from decoding a binary container. Every malformed input maps
/// to one of these — decoding never panics.
///
/// The enum is `Clone` so layers that decode lazily (the v2 in-place
/// open path) can memoize a failure once and hand it back verbatim on
/// every subsequent access.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum BinaryError {
    /// The input ended before the field named by `context` was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The first eight bytes are not the expected file-type magic.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 8],
        /// The magic this decoder expected.
        expected: [u8; 8],
    },
    /// The header names a format version this decoder does not speak.
    UnsupportedVersion {
        /// The version in the file.
        found: u32,
        /// The version this decoder supports.
        supported: u32,
    },
    /// The trailing checksum does not match the content (corruption).
    ChecksumMismatch {
        /// The checksum stored in the file.
        stored: u64,
        /// The checksum recomputed from the content.
        computed: u64,
    },
    /// A section tag this decoder does not recognize.
    UnknownSection {
        /// The offending tag.
        tag: u32,
    },
    /// The same section tag appeared twice.
    DuplicateSection {
        /// The offending tag.
        tag: u32,
    },
    /// A v2 section (or the buffer backing it) missed the 8-byte
    /// alignment the in-place layout requires.
    MisalignedSection {
        /// What was misaligned (a table entry, a payload, a buffer base).
        context: &'static str,
        /// The offending byte offset.
        offset: u64,
    },
    /// A section the format requires was absent.
    MissingSection {
        /// Human name of the missing section.
        name: &'static str,
    },
    /// A field parsed but its value violates the format's invariants.
    Malformed {
        /// What was being validated.
        context: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// The decoded edge list violated graph invariants
    /// (range/loops/duplicates), reported by the graph layer.
    Graph(GraphError),
    /// A per-record offset index (the sharded witness map) is
    /// structurally invalid or disagrees with the payload it indexes —
    /// offsets out of range, non-monotone, misaligned, or a record that
    /// does not fill its indexed extent.
    WitnessIndex {
        /// What was being validated.
        context: &'static str,
        /// What was wrong with it.
        detail: String,
    },
}

/// Every stable error code a [`BinaryError`] can carry, one per variant.
/// The snapshot test in `crates/core/tests/error_taxonomy.rs` pins this
/// list against the constructed variants and against the taxonomy
/// appendix in `docs/ARTIFACT_FORMAT.md`: adding a variant without
/// updating both is a test failure, not a silent taxonomy drift.
pub const BINARY_ERROR_CODES: &[&str] = &[
    "artifact/truncation",
    "artifact/bad-magic",
    "artifact/bad-version",
    "artifact/bit-flip",
    "artifact/unknown-section",
    "artifact/section-replay",
    "artifact/misaligned-section",
    "artifact/missing-section",
    "artifact/malformed",
    "artifact/graph-invariant",
    "artifact/witness-index",
];

impl BinaryError {
    /// A stable, machine-readable error code (part of the public error
    /// taxonomy: codes never change meaning; new variants get new
    /// codes). Match on codes, not on variants, when forward
    /// compatibility matters — the enum is `#[non_exhaustive]`.
    ///
    /// Each code doubles as the attack class the decoder fails closed
    /// on (`docs/ARTIFACT_FORMAT.md`, "Attack classes & error
    /// taxonomy"): the checksum gate reports `artifact/bit-flip`, a
    /// duplicated section reports `artifact/section-replay`, an
    /// inflated length claim reports `artifact/malformed` or
    /// `artifact/truncation`, and so on.
    pub fn code(&self) -> &'static str {
        match self {
            BinaryError::Truncated { .. } => "artifact/truncation",
            BinaryError::BadMagic { .. } => "artifact/bad-magic",
            BinaryError::UnsupportedVersion { .. } => "artifact/bad-version",
            BinaryError::ChecksumMismatch { .. } => "artifact/bit-flip",
            BinaryError::UnknownSection { .. } => "artifact/unknown-section",
            BinaryError::DuplicateSection { .. } => "artifact/section-replay",
            BinaryError::MisalignedSection { .. } => "artifact/misaligned-section",
            BinaryError::MissingSection { .. } => "artifact/missing-section",
            BinaryError::Malformed { .. } => "artifact/malformed",
            BinaryError::Graph(_) => "artifact/graph-invariant",
            BinaryError::WitnessIndex { .. } => "artifact/witness-index",
        }
    }

    /// The operator-facing remediation hint for this error's code
    /// (printed by `spanner-artifact` next to the code, documented in
    /// the taxonomy appendix). Stable like the code itself.
    pub fn remediation(&self) -> &'static str {
        remediation_for_code(self.code())
    }
}

/// Remediation hint for a stable error code, shared by every layer that
/// reports codes (one source of truth for the CLI and the docs). An
/// unknown code gets the generic hint rather than a panic, so forward
/// compatibility holds here too.
pub fn remediation_for_code(code: &str) -> &'static str {
    match code {
        "artifact/truncation" => "re-transfer the artifact; the byte stream ended early",
        "artifact/bad-magic" => "check the file type; this is not the expected container",
        "artifact/bad-version" => "re-encode with this decoder's format version or upgrade the decoder",
        "artifact/bit-flip" => "re-transfer or rebuild the artifact from a trusted source; content does not match its checksum",
        "artifact/unknown-section" => "upgrade the decoder or re-encode without the unrecognized section",
        "artifact/section-replay" => "rebuild the artifact from a trusted source; a section tag appears more than once",
        "artifact/misaligned-section" => "rebuild or re-migrate the artifact; a v2 section or buffer misses the 8-byte alignment the in-place layout requires",
        "artifact/witnesses-detached" => "this artifact was built routing-only; rebuild without --detach-witnesses to serve witness queries",
        "artifact/missing-section" => "rebuild the artifact from a trusted source; a required section is absent",
        "artifact/malformed" => "rebuild the artifact from a trusted source; a field violates the format invariants",
        "artifact/graph-invariant" => "rebuild the artifact from a trusted source; the graph payload violates simple-graph invariants",
        "artifact/witness-index" => "rebuild or re-migrate the artifact with --shard-witnesses; the witness index disagrees with the witness payload it points into",
        "artifact/cross-section" => "rebuild the artifact from a trusted source; its sections contradict each other",
        _ => "rebuild the artifact from a trusted source",
    }
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            BinaryError::BadMagic { found, expected } => write!(
                f,
                "bad magic {found:?} (expected {:?})",
                String::from_utf8_lossy(expected)
            ),
            BinaryError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this decoder speaks version {supported})"
            ),
            BinaryError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            BinaryError::UnknownSection { tag } => write!(f, "unknown section tag {tag}"),
            BinaryError::DuplicateSection { tag } => write!(f, "duplicate section tag {tag}"),
            BinaryError::MisalignedSection { context, offset } => write!(
                f,
                "misaligned {context}: byte offset {offset} is not 8-byte aligned"
            ),
            BinaryError::MissingSection { name } => write!(f, "missing required {name} section"),
            BinaryError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            BinaryError::Graph(e) => write!(f, "invalid graph payload: {e}"),
            BinaryError::WitnessIndex { context, detail } => {
                write!(f, "invalid {context}: {detail}")
            }
        }
    }
}

impl Error for BinaryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BinaryError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for BinaryError {
    fn from(e: GraphError) -> Self {
        BinaryError::Graph(e)
    }
}

/// FNV-1a 64-bit hash — the container's integrity checksum. Not
/// cryptographic; it detects truncation and accidental corruption, which
/// is the contract (artifacts are trusted content once verified).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64-bit folded 8 little-endian bytes per round — the **v2**
/// container's integrity checksum. Same error-detection contract as
/// [`fnv1a64`] (non-cryptographic; every input byte perturbs the
/// state, so truncation and accidental corruption are caught) at ~8x
/// the scan speed — the byte-wise v1 checksum alone would dominate the
/// zero-copy `open` path, whose whole point is that validating the
/// envelope costs far less than materializing it. The trailing partial
/// word is zero-padded and the total length is folded in last, so
/// buffers differing only in trailing zero bytes still hash apart.
pub fn fnv1a64_words(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        hash = hash.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        hash ^= u64::from_le_bytes(tail);
        hash = hash.wrapping_mul(PRIME);
    }
    hash ^= bytes.len() as u64;
    hash.wrapping_mul(PRIME)
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// A bounds-checked cursor over untrusted bytes: every read either
/// yields a value or a typed [`BinaryError::Truncated`] — no panics, no
/// silent wraparound.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for reading from the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes, or reports what was being read.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], BinaryError> {
        if self.remaining() < n {
            return Err(BinaryError::Truncated { context });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, BinaryError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, BinaryError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, BinaryError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Rejects trailing bytes after a fully parsed payload: a section
    /// that decodes but leaves unread bytes is malformed, not merely
    /// padded.
    pub fn expect_drained(&self, context: &'static str) -> Result<(), BinaryError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(BinaryError::Malformed {
                context,
                detail: format!("{} trailing bytes", self.remaining()),
            })
        }
    }

    /// Reads a length-like `u64` and proves it fits in memory here and
    /// now: the claimed `count` of `item_width`-byte items must not
    /// exceed the bytes actually remaining. This is what makes it safe
    /// to size allocations from decoded counts — a crafted
    /// `count = u64::MAX` fails the comparison instead of aborting the
    /// process in `Vec::with_capacity`.
    pub fn count(
        &mut self,
        item_width: usize,
        context: &'static str,
    ) -> Result<usize, BinaryError> {
        let raw = self.u64(context)?;
        let fits = usize::try_from(raw)
            .ok()
            .and_then(|c| c.checked_mul(item_width))
            .is_some_and(|total| total <= self.remaining());
        if !fits {
            return Err(BinaryError::Malformed {
                context,
                detail: format!(
                    "claimed count {raw} x {item_width} bytes exceeds the {} bytes present",
                    self.remaining()
                ),
            });
        }
        Ok(raw as usize)
    }
}

/// Builds a container: magic + version, then sections in call order,
/// sealed by [`ContainerWriter::finish`] with the trailing checksum.
#[derive(Debug)]
pub struct ContainerWriter {
    buf: Vec<u8>,
}

impl ContainerWriter {
    /// Starts a container with the given magic and version.
    pub fn new(magic: [u8; 8], version: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&magic);
        put_u32(&mut buf, version);
        ContainerWriter { buf }
    }

    /// Appends one length-prefixed section.
    pub fn section(&mut self, tag: u32, payload: &[u8]) -> &mut Self {
        put_u32(&mut self.buf, tag);
        put_u64(&mut self.buf, payload.len() as u64);
        self.buf.extend_from_slice(payload);
        self
    }

    /// Seals the container: computes the checksum over everything
    /// written so far and appends it.
    pub fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a64(&self.buf);
        put_u64(&mut self.buf, checksum);
        self.buf
    }
}

/// One decoded (but not yet interpreted) section of a container.
#[derive(Debug)]
pub struct Section<'a> {
    /// The section's tag.
    pub tag: u32,
    /// The section's raw payload bytes.
    pub payload: &'a [u8],
}

/// A structurally valid container: magic matched, checksum verified,
/// version accepted, sections split. Interpreting the payloads is the
/// caller's job.
#[derive(Debug)]
pub struct Container<'a> {
    /// The format version the file declares.
    pub version: u32,
    /// The sections in file order (tags verified unique).
    pub sections: Vec<Section<'a>>,
}

impl<'a> Container<'a> {
    /// The payload of the section with `tag`, if present.
    pub fn section(&self, tag: u32) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| s.payload)
    }
}

/// Parses and verifies a container envelope: magic, version (exact
/// match), trailing checksum (verified *before* any section is
/// interpreted, so corruption is reported as corruption rather than as
/// whatever field it happened to land in), and the section framing.
///
/// # Errors
///
/// Any structural defect maps to the matching [`BinaryError`] variant;
/// no input can cause a panic.
pub fn parse_container<'a>(
    bytes: &'a [u8],
    magic: [u8; 8],
    supported_version: u32,
) -> Result<Container<'a>, BinaryError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(BinaryError::Truncated {
            context: "container header",
        });
    }
    let body = &bytes[..bytes.len() - CHECKSUM_LEN];
    let mut tail = ByteReader::new(&bytes[bytes.len() - CHECKSUM_LEN..]);
    let stored = tail.u64("checksum")?;
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(BinaryError::ChecksumMismatch { stored, computed });
    }
    let mut r = ByteReader::new(body);
    let found = r.take(8, "magic")?;
    if found != magic {
        let mut found_arr = [0u8; 8];
        found_arr.copy_from_slice(found);
        return Err(BinaryError::BadMagic {
            found: found_arr,
            expected: magic,
        });
    }
    let version = r.u32("version")?;
    if version != supported_version {
        return Err(BinaryError::UnsupportedVersion {
            found: version,
            supported: supported_version,
        });
    }
    let mut sections = Vec::new();
    while !r.is_empty() {
        let tag = r.u32("section tag")?;
        let len = r.count(1, "section length")?;
        let payload = r.take(len, "section payload")?;
        if sections.iter().any(|s: &Section<'_>| s.tag == tag) {
            return Err(BinaryError::DuplicateSection { tag });
        }
        sections.push(Section { tag, payload });
    }
    Ok(Container { version, sections })
}

/// Byte width of the v2 container header (magic + version + flags +
/// section count).
pub const V2_HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// Byte width of one v2 section-table entry
/// (`tag u32, reserved u32, offset u64, len u64`).
pub const V2_SECTION_ENTRY_LEN: usize = 24;

/// Alignment every v2 section payload offset must satisfy, so packed
/// tables inside the payloads can be read in place.
pub const V2_SECTION_ALIGN: usize = 8;

/// Rounds `len` up to the next [`V2_SECTION_ALIGN`] boundary.
pub const fn align8(len: usize) -> usize {
    (len + (V2_SECTION_ALIGN - 1)) & !(V2_SECTION_ALIGN - 1)
}

/// One entry of a parsed v2 section table: where the payload lives
/// inside the container bytes.
#[derive(Clone, Copy, Debug)]
pub struct SectionV2 {
    /// The section's tag.
    pub tag: u32,
    /// Absolute byte offset of the payload inside the container.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// A structurally valid v2 container: checksum verified, magic and
/// version matched, flags known, section table parsed and proven
/// aligned, ordered, in-bounds, and zero-padded. Payload interpretation
/// is the caller's job — crucially, payloads can now be interpreted *in
/// place*, because every offset here has already been validated.
#[derive(Debug)]
pub struct ContainerV2 {
    /// The format version the file declares.
    pub version: u32,
    /// The header flag bits (all within the caller's known mask).
    pub flags: u32,
    /// The sections in file order (tags verified unique).
    pub sections: Vec<SectionV2>,
}

impl ContainerV2 {
    /// The location of the section with `tag`, if present.
    pub fn section(&self, tag: u32) -> Option<SectionV2> {
        self.sections.iter().find(|s| s.tag == tag).copied()
    }
}

/// Builds a v2 container: a fixed header (`magic, version u32, flags
/// u32, section_count u64`), a 24-byte-per-entry section table, then
/// the payloads — each starting on an 8-byte boundary with zero padding
/// between them and none after the last — sealed by a trailing
/// word-wise FNV-1a-64 checksum ([`fnv1a64_words`]; v1 keeps the
/// byte-wise [`fnv1a64`]).
///
/// The layout is canonical: given the same `(tag, payload)` sequence
/// the writer produces exactly one byte string, and
/// [`parse_container_v2`] accepts no other encoding of it (padding must
/// be zero, offsets are forced, trailing bytes are rejected).
#[derive(Debug)]
pub struct ContainerWriterV2 {
    magic: [u8; 8],
    version: u32,
    flags: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl ContainerWriterV2 {
    /// Starts a v2 container with the given magic, version, and header
    /// flags.
    pub fn new(magic: [u8; 8], version: u32, flags: u32) -> Self {
        ContainerWriterV2 {
            magic,
            version,
            flags,
            sections: Vec::new(),
        }
    }

    /// Appends one section in file order. Duplicate tags are not
    /// rejected here (the fuzzer uses this writer to build hostile
    /// replays); [`parse_container_v2`] rejects them.
    pub fn section(&mut self, tag: u32, payload: Vec<u8>) -> &mut Self {
        self.sections.push((tag, payload));
        self
    }

    /// Seals the container: lays out the table and padded payloads,
    /// computes the checksum, and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        let table_len = self.sections.len() * V2_SECTION_ENTRY_LEN;
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = V2_HEADER_LEN + table_len;
        for (i, (_, payload)) in self.sections.iter().enumerate() {
            offsets.push(cursor);
            cursor += payload.len();
            if i + 1 < self.sections.len() {
                cursor = align8(cursor);
            }
        }
        let mut buf = Vec::with_capacity(cursor + CHECKSUM_LEN);
        buf.extend_from_slice(&self.magic);
        put_u32(&mut buf, self.version);
        put_u32(&mut buf, self.flags);
        put_u64(&mut buf, self.sections.len() as u64);
        for ((tag, payload), offset) in self.sections.iter().zip(&offsets) {
            put_u32(&mut buf, *tag);
            put_u32(&mut buf, 0); // reserved
            put_u64(&mut buf, *offset as u64);
            put_u64(&mut buf, payload.len() as u64);
        }
        for (i, (_, payload)) in self.sections.iter().enumerate() {
            debug_assert_eq!(buf.len(), offsets[i]);
            buf.extend_from_slice(payload);
            if i + 1 < self.sections.len() {
                buf.resize(align8(buf.len()), 0);
            }
        }
        let checksum = fnv1a64_words(&buf);
        put_u64(&mut buf, checksum);
        buf
    }
}

/// Parses and verifies a v2 container envelope.
///
/// Validation order (each gate fully decided before the next): overall
/// length, trailing checksum, magic, version (exact match), header
/// flags (`flags & !known_flags` must be zero), section count (bounded
/// by the bytes present before any allocation), then each table entry
/// in order — reserved field zero, payload offset 8-byte aligned
/// ([`BinaryError::MisalignedSection`]), strictly increasing and
/// non-overlapping, in bounds, tag unique, and every padding byte
/// between payloads zero. Trailing bytes after the last payload are
/// rejected, which makes the encoding canonical.
///
/// # Errors
///
/// Any structural defect maps to the matching [`BinaryError`] variant;
/// no input can cause a panic.
pub fn parse_container_v2(
    bytes: &[u8],
    magic: [u8; 8],
    supported_version: u32,
    known_flags: u32,
) -> Result<ContainerV2, BinaryError> {
    if bytes.len() < V2_HEADER_LEN + CHECKSUM_LEN {
        return Err(BinaryError::Truncated {
            context: "container header",
        });
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let mut tail = ByteReader::new(&bytes[body_end..]);
    let stored = tail.u64("checksum")?;
    let computed = fnv1a64_words(&bytes[..body_end]);
    if stored != computed {
        return Err(BinaryError::ChecksumMismatch { stored, computed });
    }
    if bytes[..8] != magic {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(BinaryError::BadMagic {
            found,
            expected: magic,
        });
    }
    let version = crate::bytes::read_u32_at(bytes, 8);
    if version != supported_version {
        return Err(BinaryError::UnsupportedVersion {
            found: version,
            supported: supported_version,
        });
    }
    let flags = crate::bytes::read_u32_at(bytes, 12);
    if flags & !known_flags != 0 {
        return Err(BinaryError::Malformed {
            context: "container flags",
            detail: format!("unknown flag bits {:#010x}", flags & !known_flags),
        });
    }
    let count_raw = crate::bytes::read_u64_at(bytes, 16);
    let table_avail = body_end - V2_HEADER_LEN;
    let count = usize::try_from(count_raw)
        .ok()
        .filter(|c| c.checked_mul(V2_SECTION_ENTRY_LEN).is_some_and(|t| t <= table_avail))
        .ok_or_else(|| BinaryError::Malformed {
            context: "section table",
            detail: format!(
                "claimed count {count_raw} x {V2_SECTION_ENTRY_LEN} bytes exceeds the {table_avail} bytes present"
            ),
        })?;
    let mut sections: Vec<SectionV2> = Vec::with_capacity(count);
    let mut cursor = V2_HEADER_LEN + count * V2_SECTION_ENTRY_LEN;
    for i in 0..count {
        let at = V2_HEADER_LEN + i * V2_SECTION_ENTRY_LEN;
        let tag = crate::bytes::read_u32_at(bytes, at);
        let reserved = crate::bytes::read_u32_at(bytes, at + 4);
        let offset_raw = crate::bytes::read_u64_at(bytes, at + 8);
        let len_raw = crate::bytes::read_u64_at(bytes, at + 16);
        if reserved != 0 {
            return Err(BinaryError::Malformed {
                context: "section table",
                detail: format!("entry {i}: reserved field is {reserved:#x}, expected zero"),
            });
        }
        if offset_raw % V2_SECTION_ALIGN as u64 != 0 {
            return Err(BinaryError::MisalignedSection {
                context: "section payload",
                offset: offset_raw,
            });
        }
        let (offset, len) = match (usize::try_from(offset_raw), usize::try_from(len_raw)) {
            (Ok(o), Ok(l)) if o.checked_add(l).is_some_and(|end| end <= body_end) => (o, l),
            _ => {
                return Err(BinaryError::Truncated {
                    context: "section payload",
                })
            }
        };
        // Exactly the minimum alignment padding is legal: anything else
        // would give one value two encodings and break canonicality.
        if offset != align8(cursor) {
            return Err(BinaryError::Malformed {
                context: "section table",
                detail: format!(
                    "entry {i}: offset {offset} is not the canonical position {}",
                    align8(cursor)
                ),
            });
        }
        if let Some(pos) = bytes[cursor..offset].iter().position(|&b| b != 0) {
            return Err(BinaryError::Malformed {
                context: "section padding",
                detail: format!("nonzero pad byte at offset {}", cursor + pos),
            });
        }
        if sections.iter().any(|s| s.tag == tag) {
            return Err(BinaryError::DuplicateSection { tag });
        }
        sections.push(SectionV2 { tag, offset, len });
        cursor = offset + len;
    }
    if cursor != body_end {
        return Err(BinaryError::Malformed {
            context: "container body",
            detail: format!(
                "{} trailing bytes after the last section",
                body_end - cursor
            ),
        });
    }
    Ok(ContainerV2 {
        version,
        flags,
        sections,
    })
}

/// Serializes a per-record offset index: `count u64`, then the
/// `count + 1` record-boundary offsets (`offsets[i]` is where record `i`
/// starts inside the indexed payload; the final entry is the payload
/// length). This is the sharded witness map's `WITNESS_INDEX` section
/// payload; the layout is canonical by construction.
pub fn write_offset_index(offsets: &[u64]) -> Vec<u8> {
    debug_assert!(!offsets.is_empty(), "an index carries count + 1 offsets");
    let mut out = Vec::with_capacity(8 * (offsets.len() + 1));
    put_u64(&mut out, (offsets.len() - 1) as u64);
    for &o in offsets {
        put_u64(&mut out, o);
    }
    out
}

/// Parses and validates a per-record offset index against the payload it
/// points into, returning the record count. Every gate fails closed with
/// a typed [`BinaryError::WitnessIndex`]:
///
/// * the payload is exactly `8 × (count + 2)` bytes (header + the
///   `count + 1` offsets — validated against the bytes present before
///   anything is sized from the count);
/// * `offsets[0] == first_offset` (the indexed payload's header width);
/// * offsets are strictly increasing and each [`V2_SECTION_ALIGN`]-byte
///   aligned, so every record starts on the in-place read grid;
/// * `offsets[count] == end_offset` (the indexed payload's length), so
///   the index spans the payload with no slack on either side.
///
/// Record *content* agreement (each record actually filling its indexed
/// extent) is the indexed payload's own validation, performed per record
/// by the consumer.
///
/// # Errors
///
/// [`BinaryError::WitnessIndex`] describing the first violation; no
/// input can cause a panic or an unbounded allocation.
pub fn parse_offset_index(
    payload: &[u8],
    first_offset: u64,
    end_offset: u64,
) -> Result<usize, BinaryError> {
    let bad = |detail: String| BinaryError::WitnessIndex {
        context: "witness index",
        detail,
    };
    if payload.len() < 16 {
        return Err(bad(format!(
            "{} payload bytes cannot hold a count and a final offset",
            payload.len()
        )));
    }
    let count_raw = crate::bytes::read_u64_at(payload, 0);
    let expected_len = count_raw
        .checked_add(2)
        .and_then(|entries| entries.checked_mul(8));
    if expected_len != Some(payload.len() as u64) {
        return Err(bad(format!(
            "claimed {count_raw} records need {} bytes, payload holds {}",
            expected_len.map_or("overflowing".to_string(), |l| l.to_string()),
            payload.len()
        )));
    }
    let count = count_raw as usize;
    let offset_at = |i: usize| crate::bytes::read_u64_at(payload, 8 + 8 * i);
    if offset_at(0) != first_offset {
        return Err(bad(format!(
            "first record offset {} is not the payload header width {first_offset}",
            offset_at(0)
        )));
    }
    for i in 0..=count {
        let o = offset_at(i);
        if o % V2_SECTION_ALIGN as u64 != 0 {
            return Err(bad(format!(
                "record offset {o} (entry {i}) is not 8-byte aligned"
            )));
        }
        if i < count && offset_at(i + 1) <= o {
            return Err(bad(format!(
                "record offsets are not strictly increasing at entry {i} ({o} then {})",
                offset_at(i + 1)
            )));
        }
    }
    if offset_at(count) != end_offset {
        return Err(bad(format!(
            "final offset {} does not close the {end_offset}-byte payload",
            offset_at(count)
        )));
    }
    Ok(count)
}

/// Serializes any graph view as the canonical edge-list payload:
/// `node_count u64, edge_count u64`, then one `(u u32, v u32, w u64)`
/// record per edge in edge-id order. Adjacency is *not* stored — it is
/// derivable (and re-derived on decode) from the edge list under the
/// [`GraphView`] neighbor-order contract, which keeps the payload
/// minimal and the encoding canonical.
pub fn write_view_payload<V: GraphView>(view: &V, out: &mut Vec<u8>) {
    put_u64(out, view.node_count() as u64);
    put_u64(out, view.edge_count() as u64);
    for e in 0..view.edge_count() {
        let id = crate::EdgeId::new(e);
        let (u, v) = view.edge_endpoints(id);
        put_u32(out, u.raw());
        put_u32(out, v.raw());
        put_u64(out, view.edge_weight(id).get());
    }
}

/// Byte width of one `(u, v, w)` edge record in a graph payload.
const EDGE_RECORD_LEN: usize = 4 + 4 + 8;

/// Node counts a decoder accepts unconditionally, regardless of payload
/// size (the allocation guard in the graph-payload header read). Public
/// because the v2 in-place CSR validator applies the identical
/// proportionality guard.
pub const NODE_COUNT_FLOOR: usize = 1 << 16;

/// Above [`NODE_COUNT_FLOOR`], every claimed node must be backed by at
/// least `1/NODE_BYTES_FACTOR` payload bytes.
pub const NODE_BYTES_FACTOR: usize = 64;

/// Reads the `(node_count, edge_count)` header of a graph payload and
/// validates both against the id width and the bytes present.
///
/// The node count is the one length a graph structure allocates by
/// directly (adjacency headers, CSR offsets), so it gets the same
/// input-proportionality guard as every other count: beyond a floor of
/// 2^16, each claimed node must be backed by payload bytes
/// (`n ≤ max(65 536, 64 × payload length)`). Any graph that is not
/// overwhelmingly isolated vertices satisfies this trivially — a
/// connected graph carries 16 bytes per edge with `m ≥ n − 1` — while a
/// 100-byte hostile file can no longer claim 2^32 nodes and force a
/// ~100 GiB adjacency allocation.
fn read_graph_header(r: &mut ByteReader<'_>) -> Result<(usize, usize), BinaryError> {
    let payload_len = r.remaining();
    let n = r.u64("node count")?;
    let bound = NODE_COUNT_FLOOR.max(payload_len.saturating_mul(NODE_BYTES_FACTOR));
    if n > u32::MAX as u64 || n > bound as u64 {
        return Err(BinaryError::Malformed {
            context: "node count",
            detail: format!(
                "claimed {n} nodes exceeds the decoder bound ({bound}) for a {payload_len}-byte payload"
            ),
        });
    }
    let m = r.count(EDGE_RECORD_LEN, "edge count")?;
    Ok((n as usize, m))
}

/// Reads one validated edge record: endpoints in range, no self-loop,
/// positive weight.
fn read_edge_record(
    r: &mut ByteReader<'_>,
    n: usize,
) -> Result<(NodeId, NodeId, Weight), BinaryError> {
    let u = r.u32("edge endpoint")? as usize;
    let v = r.u32("edge endpoint")? as usize;
    let w = r.u64("edge weight")?;
    if u >= n || v >= n {
        return Err(BinaryError::Malformed {
            context: "edge endpoint",
            detail: format!("endpoint out of range for {n} nodes"),
        });
    }
    if u == v {
        return Err(BinaryError::Malformed {
            context: "edge record",
            detail: format!("self-loop at vertex {u}"),
        });
    }
    let weight = Weight::new(w).ok_or(BinaryError::Malformed {
        context: "edge weight",
        detail: "zero weight".to_string(),
    })?;
    Ok((NodeId::new(u), NodeId::new(v), weight))
}

/// Rebuilds a packed [`FrozenCsr`] from a graph payload. The adjacency
/// is reconstructed in the [`GraphView`] determinism order (increasing
/// edge id per vertex), which is exactly the order every view in this
/// workspace produces — so a decoded artifact traverses, and therefore
/// tie-breaks, bit-identically to the one that was encoded.
///
/// # Errors
///
/// [`BinaryError`] on truncation or any record violating the payload
/// invariants (range, self-loops, zero weights). Duplicate edges are
/// *not* rejected: the payload mirrors whatever multigraph-agnostic
/// view was encoded, byte for byte.
pub fn read_frozen_csr_payload(r: &mut ByteReader<'_>) -> Result<FrozenCsr, BinaryError> {
    let (n, m) = read_graph_header(r)?;
    let mut staging = Graph::with_edge_capacity(n, m);
    for _ in 0..m {
        let (u, v, w) = read_edge_record(r, n)?;
        staging.add_edge_unchecked(u, v, w);
    }
    Ok(FrozenCsr::from_view(&staging))
}

/// Rebuilds a [`Graph`] from a graph payload, enforcing the full
/// simple-graph invariants (so duplicate edges are rejected here, unlike
/// in [`read_frozen_csr_payload`]).
///
/// # Errors
///
/// [`BinaryError`] on truncation, malformed records, or structural
/// violations surfaced as [`BinaryError::Graph`].
pub fn read_graph_payload(r: &mut ByteReader<'_>) -> Result<Graph, BinaryError> {
    let (n, m) = read_graph_header(r)?;
    let mut graph = Graph::with_edge_capacity(n, m);
    for _ in 0..m {
        let (u, v, w) = read_edge_record(r, n)?;
        graph.try_add_edge(u, v, w)?;
    }
    Ok(graph)
}

/// Encodes a [`FrozenCsr`] as a standalone [`FROZEN_CSR_MAGIC`]
/// container (see the module docs for the layout and the example for a
/// roundtrip).
pub fn encode_frozen_csr(csr: &FrozenCsr) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + EDGE_RECORD_LEN * csr.edge_count());
    write_view_payload(csr, &mut payload);
    let mut w = ContainerWriter::new(FROZEN_CSR_MAGIC, FORMAT_VERSION);
    w.section(SECTION_ADJACENCY, &payload);
    w.finish()
}

/// Decodes a standalone [`FROZEN_CSR_MAGIC`] container back into a
/// packed [`FrozenCsr`].
///
/// # Errors
///
/// [`BinaryError`] on any structural or payload defect; hostile input
/// cannot cause a panic.
pub fn decode_frozen_csr(bytes: &[u8]) -> Result<FrozenCsr, BinaryError> {
    let container = parse_container(bytes, FROZEN_CSR_MAGIC, FORMAT_VERSION)?;
    for section in &container.sections {
        if section.tag != SECTION_ADJACENCY {
            return Err(BinaryError::UnknownSection { tag: section.tag });
        }
    }
    let payload = container
        .section(SECTION_ADJACENCY)
        .ok_or(BinaryError::MissingSection { name: "adjacency" })?;
    let mut r = ByteReader::new(payload);
    let csr = read_frozen_csr_payload(&mut r)?;
    r.expect_drained("adjacency section")?;
    Ok(csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::read_u64_at;
    use crate::{generators, EdgeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view_neighbors(view: &impl GraphView, v: NodeId) -> Vec<(NodeId, EdgeId, Weight)> {
        let mut out = Vec::new();
        view.for_each_neighbor(v, |n, e, w| out.push((n, e, w)));
        out
    }

    #[test]
    fn frozen_csr_round_trips_structure() {
        let mut rng = StdRng::seed_from_u64(2024);
        let g = generators::erdos_renyi(30, 0.2, &mut rng);
        let frozen = FrozenCsr::from_view(&g);
        let bytes = encode_frozen_csr(&frozen);
        let back = decode_frozen_csr(&bytes).unwrap();
        assert_eq!(back.node_count(), frozen.node_count());
        assert_eq!(back.edge_count(), frozen.edge_count());
        for v in 0..frozen.node_count() {
            assert_eq!(
                view_neighbors(&back, NodeId::new(v)),
                view_neighbors(&frozen, NodeId::new(v))
            );
        }
        assert_eq!(
            encode_frozen_csr(&back),
            bytes,
            "re-encoding must be canonical"
        );
    }

    #[test]
    fn weighted_and_empty_graphs_round_trip() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 5), (1, 2, 2), (0, 3, u64::MAX - 1)]).unwrap();
        let bytes = encode_frozen_csr(&FrozenCsr::from_view(&g));
        let back = decode_frozen_csr(&bytes).unwrap();
        assert_eq!(back.edge_weight(EdgeId::new(2)).get(), u64::MAX - 1);
        let empty = encode_frozen_csr(&FrozenCsr::from_view(&Graph::new(0)));
        assert_eq!(decode_frozen_csr(&empty).unwrap().node_count(), 0);
    }

    #[test]
    fn graph_payload_enforces_simple_graph() {
        let g = generators::cycle(5);
        let mut payload = Vec::new();
        write_view_payload(&g, &mut payload);
        let back = read_graph_payload(&mut ByteReader::new(&payload)).unwrap();
        assert_eq!(back.edge_count(), 5);
        // A duplicate edge passes the CSR reader but not the Graph reader.
        let mut dup = Vec::new();
        put_u64(&mut dup, 3);
        put_u64(&mut dup, 2);
        for _ in 0..2 {
            put_u32(&mut dup, 0);
            put_u32(&mut dup, 1);
            put_u64(&mut dup, 1);
        }
        assert!(read_frozen_csr_payload(&mut ByteReader::new(&dup)).is_ok());
        assert!(matches!(
            read_graph_payload(&mut ByteReader::new(&dup)),
            Err(BinaryError::Graph(_))
        ));
    }

    #[test]
    fn every_truncation_errors_without_panicking() {
        let g = generators::petersen();
        let bytes = encode_frozen_csr(&FrozenCsr::from_view(&g));
        for len in 0..bytes.len() {
            assert!(
                decode_frozen_csr(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_errors() {
        let g = generators::cycle(6);
        let bytes = encode_frozen_csr(&FrozenCsr::from_view(&g));
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x41;
            assert!(
                decode_frozen_csr(&corrupt).is_err(),
                "flipping byte {i} must be detected"
            );
        }
    }

    #[test]
    fn wrong_magic_version_and_checksum_are_typed() {
        let g = generators::cycle(4);
        let bytes = encode_frozen_csr(&FrozenCsr::from_view(&g));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // Fix the checksum so the magic check itself is reached.
        let len = wrong_magic.len();
        let sum = fnv1a64(&wrong_magic[..len - 8]).to_le_bytes();
        wrong_magic[len - 8..].copy_from_slice(&sum);
        assert!(matches!(
            decode_frozen_csr(&wrong_magic),
            Err(BinaryError::BadMagic { .. })
        ));

        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&2u32.to_le_bytes());
        let sum = fnv1a64(&future[..len - 8]).to_le_bytes();
        future[len - 8..].copy_from_slice(&sum);
        assert!(matches!(
            decode_frozen_csr(&future),
            Err(BinaryError::UnsupportedVersion {
                found: 2,
                supported: FORMAT_VERSION
            })
        ));

        let mut bad_sum = bytes.clone();
        let last = bad_sum.len() - 1;
        bad_sum[last] ^= 0xff;
        assert!(matches!(
            decode_frozen_csr(&bad_sum),
            Err(BinaryError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_counts_rejected_before_allocation() {
        // A payload claiming u64::MAX edges in a 16-byte body must fail
        // the count check, not abort in Vec::with_capacity.
        let mut payload = Vec::new();
        put_u64(&mut payload, 4);
        put_u64(&mut payload, u64::MAX);
        let mut w = ContainerWriter::new(FROZEN_CSR_MAGIC, FORMAT_VERSION);
        w.section(SECTION_ADJACENCY, &payload);
        let bytes = w.finish();
        assert!(matches!(
            decode_frozen_csr(&bytes),
            Err(BinaryError::Malformed { .. })
        ));
        // The node count allocates adjacency headers directly, so a tiny
        // payload claiming ~2^32 nodes (and 0 edges, passing the edge
        // guard) must be rejected by the proportionality bound too.
        let mut payload = Vec::new();
        put_u64(&mut payload, u32::MAX as u64);
        put_u64(&mut payload, 0);
        let mut w = ContainerWriter::new(FROZEN_CSR_MAGIC, FORMAT_VERSION);
        w.section(SECTION_ADJACENCY, &payload);
        assert!(matches!(
            decode_frozen_csr(&w.finish()),
            Err(BinaryError::Malformed { .. })
        ));
        // While the floor keeps small isolated-vertex graphs legal.
        let sparse = FrozenCsr::from_view(&Graph::new(50_000));
        let bytes = encode_frozen_csr(&sparse);
        assert_eq!(decode_frozen_csr(&bytes).unwrap().node_count(), 50_000);
    }

    #[test]
    fn unknown_and_duplicate_sections_rejected() {
        let mut payload = Vec::new();
        write_view_payload(&generators::cycle(3), &mut payload);
        let mut w = ContainerWriter::new(FROZEN_CSR_MAGIC, FORMAT_VERSION);
        w.section(SECTION_ADJACENCY, &payload);
        w.section(99, &[]);
        assert!(matches!(
            decode_frozen_csr(&w.finish()),
            Err(BinaryError::UnknownSection { tag: 99 })
        ));
        let mut w = ContainerWriter::new(FROZEN_CSR_MAGIC, FORMAT_VERSION);
        w.section(SECTION_ADJACENCY, &payload);
        w.section(SECTION_ADJACENCY, &payload);
        assert!(matches!(
            decode_frozen_csr(&w.finish()),
            Err(BinaryError::DuplicateSection { .. })
        ));
    }

    const TEST_MAGIC: [u8; 8] = *b"VFTTESTC";

    fn v2_two_sections() -> Vec<u8> {
        let mut w = ContainerWriterV2::new(TEST_MAGIC, 2, 0);
        w.section(1, vec![0xAA; 5]); // 5 bytes: forces 3 pad bytes
        w.section(2, vec![0xBB; 8]);
        w.finish()
    }

    fn reseal(bytes: &mut [u8]) {
        let end = bytes.len() - CHECKSUM_LEN;
        let sum = fnv1a64_words(&bytes[..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
    }

    #[test]
    fn v2_envelope_round_trips_and_is_canonical() {
        let bytes = v2_two_sections();
        let c = parse_container_v2(&bytes, TEST_MAGIC, 2, 0).unwrap();
        assert_eq!(c.version, 2);
        assert_eq!(c.flags, 0);
        assert_eq!(c.sections.len(), 2);
        let s1 = c.section(1).unwrap();
        assert_eq!(&bytes[s1.offset..s1.offset + s1.len], &[0xAA; 5]);
        let s2 = c.section(2).unwrap();
        assert_eq!(s2.offset % V2_SECTION_ALIGN, 0);
        assert_eq!(&bytes[s2.offset..s2.offset + s2.len], &[0xBB; 8]);
        // Re-emitting the same sections reproduces the bytes exactly.
        let mut again = ContainerWriterV2::new(TEST_MAGIC, 2, 0);
        again.section(1, vec![0xAA; 5]);
        again.section(2, vec![0xBB; 8]);
        assert_eq!(again.finish(), bytes);
    }

    #[test]
    fn v2_every_truncation_and_flip_errors() {
        let bytes = v2_two_sections();
        for len in 0..bytes.len() {
            assert!(
                parse_container_v2(&bytes[..len], TEST_MAGIC, 2, 0).is_err(),
                "truncation to {len} must fail"
            );
        }
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x41;
            assert!(
                parse_container_v2(&corrupt, TEST_MAGIC, 2, 0).is_err(),
                "flipping byte {i} must be detected"
            );
        }
    }

    #[test]
    fn v2_misaligned_offset_is_typed() {
        let mut bytes = v2_two_sections();
        // Bump section 0's table offset by one: no longer 8-byte aligned.
        let entry = V2_HEADER_LEN + 8;
        let offset = read_u64_at(&bytes, entry) + 1;
        bytes[entry..entry + 8].copy_from_slice(&offset.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            parse_container_v2(&bytes, TEST_MAGIC, 2, 0),
            Err(BinaryError::MisalignedSection { offset: o, .. }) if o == offset
        ));
    }

    #[test]
    fn v2_rejects_nonzero_padding_reserved_and_trailing() {
        // Nonzero pad byte between the sections.
        let mut bytes = v2_two_sections();
        let c = parse_container_v2(&bytes, TEST_MAGIC, 2, 0).unwrap();
        let pad_at = c.section(1).unwrap().offset + 5; // first pad byte
        bytes[pad_at] = 1;
        reseal(&mut bytes);
        assert!(matches!(
            parse_container_v2(&bytes, TEST_MAGIC, 2, 0),
            Err(BinaryError::Malformed {
                context: "section padding",
                ..
            })
        ));
        // Nonzero reserved field in a table entry.
        let mut bytes = v2_two_sections();
        bytes[V2_HEADER_LEN + 4] = 7;
        reseal(&mut bytes);
        assert!(matches!(
            parse_container_v2(&bytes, TEST_MAGIC, 2, 0),
            Err(BinaryError::Malformed {
                context: "section table",
                ..
            })
        ));
        // A non-canonical (over-padded) section offset.
        let mut w = ContainerWriterV2::new(TEST_MAGIC, 2, 0);
        w.section(1, vec![0xAA; 5]);
        let mut bytes = w.finish();
        // Grow the file by 8 zero bytes before the checksum and shift the
        // (single) section 8 bytes right: still aligned, still zero
        // padding, but not the canonical position.
        let entry = V2_HEADER_LEN + 8;
        let old_offset = read_u64_at(&bytes, entry) as usize;
        let mut grown = bytes[..old_offset].to_vec();
        grown.extend_from_slice(&[0u8; 8]);
        grown.extend_from_slice(&bytes[old_offset..bytes.len() - CHECKSUM_LEN]);
        grown.extend_from_slice(&[0u8; CHECKSUM_LEN]);
        grown[entry..entry + 8].copy_from_slice(&((old_offset + 8) as u64).to_le_bytes());
        reseal(&mut grown);
        assert!(matches!(
            parse_container_v2(&grown, TEST_MAGIC, 2, 0),
            Err(BinaryError::Malformed {
                context: "section table",
                ..
            })
        ));
        // Trailing bytes after the last section.
        bytes.truncate(bytes.len() - CHECKSUM_LEN);
        bytes.extend_from_slice(&[0u8; 4]);
        let sum = fnv1a64_words(&bytes).to_le_bytes();
        bytes.extend_from_slice(&sum);
        assert!(matches!(
            parse_container_v2(&bytes, TEST_MAGIC, 2, 0),
            Err(BinaryError::Malformed {
                context: "container body",
                ..
            })
        ));
    }

    #[test]
    fn v2_rejects_unknown_flags_version_and_oversized_count() {
        let mut w = ContainerWriterV2::new(TEST_MAGIC, 2, 0b10);
        w.section(1, vec![1, 2, 3]);
        let bytes = w.finish();
        // Flag bit 1 is unknown to a decoder that only knows bit 0.
        assert!(matches!(
            parse_container_v2(&bytes, TEST_MAGIC, 2, 0b1),
            Err(BinaryError::Malformed {
                context: "container flags",
                ..
            })
        ));
        // But fine for a decoder that knows it.
        assert!(parse_container_v2(&bytes, TEST_MAGIC, 2, 0b11).is_ok());
        // Wrong version is typed.
        assert!(matches!(
            parse_container_v2(&bytes, TEST_MAGIC, 3, 0b11),
            Err(BinaryError::UnsupportedVersion {
                found: 2,
                supported: 3
            })
        ));
        // A section count that cannot fit in the file fails before any
        // table-sized allocation.
        let mut huge = v2_two_sections();
        huge[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        reseal(&mut huge);
        assert!(matches!(
            parse_container_v2(&huge, TEST_MAGIC, 2, 0),
            Err(BinaryError::Malformed {
                context: "section table",
                ..
            })
        ));
        // Duplicate tags are replay, like v1.
        let mut w = ContainerWriterV2::new(TEST_MAGIC, 2, 0);
        w.section(1, vec![1]);
        w.section(1, vec![2]);
        assert!(matches!(
            parse_container_v2(&w.finish(), TEST_MAGIC, 2, 0),
            Err(BinaryError::DuplicateSection { tag: 1 })
        ));
    }

    #[test]
    fn malformed_records_rejected() {
        // (u, v, w) records for a 3-node payload, each invalid.
        let cases = [
            ("self-loop", (1u32, 1u32, 1u64)),
            ("out of range", (9, 0, 1)),
            ("zero weight", (0, 1, 0)),
        ];
        for (what, (u, v, w)) in cases {
            let mut payload = Vec::new();
            put_u64(&mut payload, 3);
            put_u64(&mut payload, 1);
            put_u32(&mut payload, u);
            put_u32(&mut payload, v);
            put_u64(&mut payload, w);
            let mut w = ContainerWriter::new(FROZEN_CSR_MAGIC, FORMAT_VERSION);
            w.section(SECTION_ADJACENCY, &payload);
            assert!(
                matches!(
                    decode_frozen_csr(&w.finish()),
                    Err(BinaryError::Malformed { .. })
                ),
                "{what} must be rejected"
            );
        }
    }

    #[test]
    fn every_variant_has_a_listed_code_and_remediation() {
        let variants = [
            BinaryError::Truncated { context: "x" },
            BinaryError::BadMagic {
                found: [0; 8],
                expected: FROZEN_CSR_MAGIC,
            },
            BinaryError::UnsupportedVersion {
                found: 2,
                supported: 1,
            },
            BinaryError::ChecksumMismatch {
                stored: 0,
                computed: 1,
            },
            BinaryError::UnknownSection { tag: 9 },
            BinaryError::DuplicateSection { tag: 1 },
            BinaryError::MisalignedSection {
                context: "section payload",
                offset: 1,
            },
            BinaryError::MissingSection { name: "meta" },
            BinaryError::Malformed {
                context: "x",
                detail: String::new(),
            },
            BinaryError::Graph(GraphError::SelfLoop {
                node: NodeId::new(0),
            }),
            BinaryError::WitnessIndex {
                context: "witness index",
                detail: String::new(),
            },
        ];
        let codes: Vec<&str> = variants.iter().map(BinaryError::code).collect();
        assert_eq!(codes, BINARY_ERROR_CODES, "taxonomy snapshot drifted");
        for e in &variants {
            assert!(
                !e.remediation().is_empty(),
                "{} has no remediation",
                e.code()
            );
        }
        // Unknown codes degrade to the generic hint, never panic.
        assert!(!remediation_for_code("artifact/not-a-code").is_empty());
    }

    #[test]
    fn offset_index_round_trips_and_fails_closed() {
        // Three records starting at 8, 24, 40, payload ends at 64.
        let offsets = [8u64, 24, 40, 64];
        let payload = write_offset_index(&offsets);
        assert_eq!(payload.len(), 8 * 5);
        assert_eq!(parse_offset_index(&payload, 8, 64).unwrap(), 3);
        // Empty index: zero records, the single offset closes the
        // 8-byte header-only payload.
        let empty = write_offset_index(&[8]);
        assert_eq!(parse_offset_index(&empty, 8, 8).unwrap(), 0);

        let expect_index_err = |bytes: &[u8], first: u64, end: u64, what: &str| {
            let err = parse_offset_index(bytes, first, end).unwrap_err();
            assert!(
                matches!(err, BinaryError::WitnessIndex { .. }),
                "{what}: want WitnessIndex, got {err}"
            );
            assert_eq!(err.code(), "artifact/witness-index");
        };
        // Too short to carry a count and one offset.
        expect_index_err(&payload[..8], 8, 64, "short payload");
        // Count disagrees with the bytes present.
        let mut wrong_count = payload.clone();
        wrong_count[..8].copy_from_slice(&9u64.to_le_bytes());
        expect_index_err(&wrong_count, 8, 64, "wrong count");
        // Overflowing count cannot wrap into a passing length check.
        let mut huge = payload.clone();
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        expect_index_err(&huge, 8, 64, "overflowing count");
        // First offset must be the payload header width.
        expect_index_err(&payload, 16, 64, "wrong first offset");
        // Non-monotone offsets.
        let mut swapped = write_offset_index(&[8, 40, 24, 64]);
        expect_index_err(&swapped, 8, 64, "non-monotone");
        swapped = write_offset_index(&[8, 24, 24, 64]);
        expect_index_err(&swapped, 8, 64, "repeated offset");
        // Misaligned offset.
        let nudged = write_offset_index(&[8, 25, 40, 64]);
        expect_index_err(&nudged, 8, 64, "misaligned offset");
        // Final offset must close the payload exactly.
        expect_index_err(&payload, 8, 72, "open tail");
    }

    #[test]
    fn error_display_and_source() {
        let e = BinaryError::Truncated { context: "header" };
        assert!(e.to_string().contains("header"));
        let g = BinaryError::from(GraphError::SelfLoop {
            node: NodeId::new(1),
        });
        assert!(g.source().is_some());
        assert!(BinaryError::MissingSection { name: "meta" }
            .to_string()
            .contains("meta"));
    }
}
