//! Edge and vertex connectivity via Menger/max-flow.
//!
//! Why a spanner library needs this: an `f`-VFT spanner can only preserve
//! `s–t` reachability if `G` itself has more than `f` internally disjoint
//! `s–t` routes. These exact connectivity queries power feasibility checks
//! in examples and tests (e.g. the lower-bound blow-up must be exactly
//! `2t`-connected for its criticality argument to bite), and provide the
//! ground truth that the length-bounded greedy packing in
//! `spanner-faults` is validated against.

use crate::adjacency::GraphView;
use crate::flow::FlowNetwork;
use crate::{EdgeId, FaultMask, NodeId};

/// Iterates live (unmasked) edges of a view in edge-id order — the shared
/// scan of every network builder, kept deterministic across graph layouts
/// so cut witnesses are identical on the adjacency-list and CSR paths.
fn for_each_live_edge<V: GraphView>(
    view: &V,
    mask: &FaultMask,
    mut f: impl FnMut(EdgeId, NodeId, NodeId),
) {
    for i in 0..view.edge_count() {
        let id = EdgeId::new(i);
        let (u, v) = view.edge_endpoints(id);
        if mask.is_edge_faulted(id) || mask.is_vertex_faulted(u) || mask.is_vertex_faulted(v) {
            continue;
        }
        f(id, u, v);
    }
}

/// Builds the unit-capacity network of `graph ∖ mask` for edge cuts.
fn edge_network<V: GraphView>(graph: &V, mask: &FaultMask) -> FlowNetwork {
    let mut net = FlowNetwork::new(graph.node_count());
    edge_network_into(&mut net, graph, mask);
    net
}

/// [`edge_network`] into a reset, allocation-reusing network.
fn edge_network_into<V: GraphView>(net: &mut FlowNetwork, graph: &V, mask: &FaultMask) {
    net.reset(graph.node_count());
    for_each_live_edge(graph, mask, |_, u, v| {
        net.add_undirected_unit(u.index(), v.index());
    });
}

/// Reusable state for the `_with` cut extractors: the flow network and
/// the residual-side buffer, recycled across the thousands of cut
/// shortcut probes a single FT-greedy run issues.
#[derive(Debug, Default)]
pub struct CutScratch {
    net: FlowNetwork,
    side: Vec<bool>,
}

impl CutScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        CutScratch::default()
    }
}

/// Maximum number of edge-disjoint `s–t` paths in `graph ∖ mask`
/// (equivalently, the minimum `s–t` edge cut), capped at `limit`.
///
/// # Panics
///
/// Panics if `s == t` or either vertex is out of range.
///
/// # Examples
///
/// ```
/// use spanner_graph::{connectivity, FaultMask, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mask = FaultMask::for_graph(&g);
/// let lambda = connectivity::edge_connectivity_st(
///     &g, &mask, NodeId::new(0), NodeId::new(3), u32::MAX);
/// assert_eq!(lambda, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn edge_connectivity_st<V: GraphView>(
    graph: &V,
    mask: &FaultMask,
    s: NodeId,
    t: NodeId,
    limit: u32,
) -> u32 {
    edge_network(graph, mask).max_flow(s.index(), t.index(), limit)
}

/// Global edge connectivity `λ(G ∖ mask)`: the minimum over all vertices
/// `t ≠ s` of `λ(s, t)` for a fixed live `s`. Returns 0 for graphs with
/// fewer than two live vertices or disconnected graphs.
pub fn edge_connectivity<V: GraphView>(graph: &V, mask: &FaultMask) -> u32 {
    let live: Vec<NodeId> = (0..graph.node_count())
        .map(NodeId::new)
        .filter(|v| !mask.is_vertex_faulted(*v))
        .collect();
    if live.len() < 2 {
        return 0;
    }
    let s = live[0];
    let mut best = u32::MAX;
    for &t in &live[1..] {
        best = best.min(edge_connectivity_st(graph, mask, s, t, best));
        if best == 0 {
            break;
        }
    }
    best
}

/// Maximum number of internally vertex-disjoint `s–t` paths in
/// `graph ∖ mask`, capped at `limit`; `None` if `s` and `t` are adjacent
/// (then κ(s,t) is unbounded by convention — no vertex cut separates
/// them).
///
/// Implemented by vertex splitting: each vertex `v ∉ {s, t}` becomes
/// `v_in → v_out` with capacity 1; each surviving edge contributes arcs
/// between the split halves.
///
/// # Panics
///
/// Panics if `s == t` or either vertex is out of range or faulted.
pub fn vertex_connectivity_st<V: GraphView>(
    graph: &V,
    mask: &FaultMask,
    s: NodeId,
    t: NodeId,
    limit: u32,
) -> Option<u32> {
    assert!(
        !mask.is_vertex_faulted(s) && !mask.is_vertex_faulted(t),
        "terminal is faulted"
    );
    if graph
        .find_edge(s, t)
        .is_some_and(|e| !mask.is_edge_faulted(e))
    {
        return None;
    }
    let net = split_network(graph, mask, s, t);
    let mut net = net;
    Some(net.max_flow(s.index(), t.index(), limit))
}

/// The vertex-split network: node `v` becomes `v_in = v`, `v_out = v + n`
/// joined by a capacity-1 arc (terminals collapsed to a single node). Edge
/// arcs get effectively infinite capacity so that *every* minimum cut
/// consists of split arcs only — required for cut extraction.
fn split_network<V: GraphView>(graph: &V, mask: &FaultMask, s: NodeId, t: NodeId) -> FlowNetwork {
    let mut net = FlowNetwork::new(2 * graph.node_count());
    split_network_into(&mut net, graph, mask, s, t);
    net
}

/// [`split_network`] into a reset, allocation-reusing network.
fn split_network_into<V: GraphView>(
    net: &mut FlowNetwork,
    graph: &V,
    mask: &FaultMask,
    s: NodeId,
    t: NodeId,
) {
    let n = graph.node_count();
    let big = n as u32 + 1; // no s-t flow can exceed n
    net.reset(2 * n);
    for i in 0..n {
        let v = NodeId::new(i);
        if v == s || v == t || mask.is_vertex_faulted(v) {
            continue;
        }
        net.add_arc(v.index(), v.index() + n, 1);
    }
    let out_of = |v: NodeId| {
        if v == s || v == t {
            v.index()
        } else {
            v.index() + n
        }
    };
    let in_of = |v: NodeId| v.index();
    for_each_live_edge(graph, mask, |_, u, v| {
        net.add_arc(out_of(u), in_of(v), big);
        net.add_arc(out_of(v), in_of(u), big);
    });
}

/// Extracts a minimum `s–t` *edge* cut of size at most `limit`, or `None`
/// if every cut is larger. The returned edges disconnect `s` from `t`.
pub fn min_edge_cut_st<V: GraphView>(
    graph: &V,
    mask: &FaultMask,
    s: NodeId,
    t: NodeId,
    limit: u32,
) -> Option<Vec<crate::EdgeId>> {
    min_edge_cut_st_with(graph, mask, s, t, limit, &mut CutScratch::new())
}

/// [`min_edge_cut_st`] with caller-owned scratch: identical answers, no
/// per-call network allocation (the FT-greedy oracle hot path).
pub fn min_edge_cut_st_with<V: GraphView>(
    graph: &V,
    mask: &FaultMask,
    s: NodeId,
    t: NodeId,
    limit: u32,
    scratch: &mut CutScratch,
) -> Option<Vec<crate::EdgeId>> {
    edge_network_into(&mut scratch.net, graph, mask);
    let flow = scratch
        .net
        .max_flow(s.index(), t.index(), limit.saturating_add(1));
    if flow > limit {
        return None;
    }
    scratch.net.min_cut_side_into(s.index(), &mut scratch.side);
    let side = &scratch.side;
    let mut cut = Vec::new();
    for_each_live_edge(graph, mask, |id, u, v| {
        if side[u.index()] != side[v.index()] {
            cut.push(id);
        }
    });
    debug_assert_eq!(cut.len() as u32, flow, "cut size must equal flow value");
    Some(cut)
}

/// Extracts a minimum `s–t` *vertex* cut of size at most `limit`, or
/// `None` if `s, t` are adjacent or every cut is larger. The returned
/// vertices (disjoint from `{s, t}`) disconnect `s` from `t`.
pub fn min_vertex_cut_st<V: GraphView>(
    graph: &V,
    mask: &FaultMask,
    s: NodeId,
    t: NodeId,
    limit: u32,
) -> Option<Vec<NodeId>> {
    min_vertex_cut_st_with(graph, mask, s, t, limit, &mut CutScratch::new())
}

/// [`min_vertex_cut_st`] with caller-owned scratch: identical answers, no
/// per-call network allocation (the FT-greedy oracle hot path).
///
/// # Panics
///
/// Same conditions as [`min_vertex_cut_st`].
pub fn min_vertex_cut_st_with<V: GraphView>(
    graph: &V,
    mask: &FaultMask,
    s: NodeId,
    t: NodeId,
    limit: u32,
    scratch: &mut CutScratch,
) -> Option<Vec<NodeId>> {
    assert!(
        !mask.is_vertex_faulted(s) && !mask.is_vertex_faulted(t),
        "terminal is faulted"
    );
    if graph
        .find_edge(s, t)
        .is_some_and(|e| !mask.is_edge_faulted(e))
    {
        return None;
    }
    let n = graph.node_count();
    split_network_into(&mut scratch.net, graph, mask, s, t);
    let flow = scratch
        .net
        .max_flow(s.index(), t.index(), limit.saturating_add(1));
    if flow > limit {
        return None;
    }
    scratch.net.min_cut_side_into(s.index(), &mut scratch.side);
    let side = &scratch.side;
    let mut cut = Vec::new();
    for i in 0..n {
        let v = NodeId::new(i);
        if v == s || v == t || mask.is_vertex_faulted(v) {
            continue;
        }
        // The split arc v_in -> v_out crosses the cut.
        if side[v.index()] && !side[v.index() + n] {
            cut.push(v);
        }
    }
    debug_assert_eq!(cut.len() as u32, flow, "cut size must equal flow value");
    Some(cut)
}

/// Decides whether `graph ∖ mask` is `k`-vertex-connected: at least `k+1`
/// live vertices and every non-adjacent live pair joined by ≥ k
/// internally disjoint paths.
///
/// Cost: O(n²) bounded max-flows in the worst case; intended for
/// moderate-size feasibility checks and tests.
pub fn is_k_vertex_connected<V: GraphView>(graph: &V, mask: &FaultMask, k: u32) -> bool {
    if k == 0 {
        return true;
    }
    let live: Vec<NodeId> = (0..graph.node_count())
        .map(NodeId::new)
        .filter(|v| !mask.is_vertex_faulted(*v))
        .collect();
    if (live.len() as u32) < k + 1 {
        return false;
    }
    for (i, &u) in live.iter().enumerate() {
        for &v in &live[i + 1..] {
            match vertex_connectivity_st(graph, mask, u, v, k) {
                None => continue, // adjacent pairs impose no cut constraint
                Some(kappa) => {
                    if kappa < k {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Global vertex connectivity `κ(G ∖ mask)`: the largest `k` for which
/// [`is_k_vertex_connected`] holds; complete live subgraphs report
/// `live − 1`. Intended for small graphs (binary search over `k` with
/// O(n²) flows per probe).
pub fn vertex_connectivity<V: GraphView>(graph: &V, mask: &FaultMask) -> u32 {
    let live = (0..graph.node_count())
        .map(NodeId::new)
        .filter(|v| !mask.is_vertex_faulted(*v))
        .count() as u32;
    if live < 2 {
        return 0;
    }
    let mut lo = 0u32; // always k-connected for k = 0
    let mut hi = live - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if is_k_vertex_connected(graph, mask, mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::{EdgeId, Graph};

    fn no_faults(g: &Graph) -> FaultMask {
        FaultMask::for_graph(g)
    }

    #[test]
    fn cycle_is_two_connected() {
        let g = generators::cycle(6);
        let mask = no_faults(&g);
        assert_eq!(edge_connectivity(&g, &mask), 2);
        assert_eq!(vertex_connectivity(&g, &mask), 2);
    }

    #[test]
    fn path_is_one_connected() {
        let g = generators::path(5);
        let mask = no_faults(&g);
        assert_eq!(edge_connectivity(&g, &mask), 1);
        assert_eq!(vertex_connectivity(&g, &mask), 1);
    }

    #[test]
    fn complete_graph_connectivity() {
        let g = generators::complete(6);
        let mask = no_faults(&g);
        assert_eq!(edge_connectivity(&g, &mask), 5);
        assert_eq!(vertex_connectivity(&g, &mask), 5);
    }

    #[test]
    fn complete_bipartite_vertex_connectivity_is_min_side() {
        let g = generators::complete_bipartite(3, 5);
        let mask = no_faults(&g);
        assert_eq!(vertex_connectivity(&g, &mask), 3);
        assert_eq!(edge_connectivity(&g, &mask), 3);
    }

    #[test]
    fn petersen_is_three_connected() {
        let g = generators::petersen();
        let mask = no_faults(&g);
        assert_eq!(vertex_connectivity(&g, &mask), 3);
        assert_eq!(edge_connectivity(&g, &mask), 3);
    }

    #[test]
    fn st_vertex_connectivity_none_for_adjacent() {
        let g = generators::complete(4);
        let mask = no_faults(&g);
        assert_eq!(
            vertex_connectivity_st(&g, &mask, NodeId::new(0), NodeId::new(1), u32::MAX),
            None
        );
    }

    #[test]
    fn st_vertex_connectivity_counts_disjoint_paths() {
        // Diamond: 0 and 3 joined via 1 and via 2 (non-adjacent).
        let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let mask = no_faults(&g);
        assert_eq!(
            vertex_connectivity_st(&g, &mask, NodeId::new(0), NodeId::new(3), u32::MAX),
            Some(2)
        );
    }

    #[test]
    fn faults_reduce_connectivity() {
        let g = generators::cycle(5);
        let mut mask = no_faults(&g);
        mask.fault_edge(EdgeId::new(0));
        assert_eq!(edge_connectivity(&g, &mask), 1);
        let mut mask = no_faults(&g);
        mask.fault_vertex(NodeId::new(0));
        // C5 minus a vertex is a path: 1-connected.
        assert_eq!(vertex_connectivity(&g, &mask), 1);
    }

    #[test]
    fn disconnected_graph_is_zero_connected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mask = no_faults(&g);
        assert_eq!(edge_connectivity(&g, &mask), 0);
        assert_eq!(vertex_connectivity(&g, &mask), 0);
        assert!(!is_k_vertex_connected(&g, &mask, 1));
    }

    #[test]
    fn grid_is_two_connected() {
        let g = generators::grid(3, 3);
        let mask = no_faults(&g);
        assert_eq!(vertex_connectivity(&g, &mask), 2);
    }

    #[test]
    fn limit_caps_the_answer() {
        let g = generators::complete(8);
        let mask = no_faults(&g);
        assert_eq!(
            edge_connectivity_st(&g, &mask, NodeId::new(0), NodeId::new(1), 3),
            3
        );
    }

    #[test]
    fn extracted_edge_cut_disconnects() {
        let g = generators::cycle(6);
        let mask = no_faults(&g);
        let cut = min_edge_cut_st(&g, &mask, NodeId::new(0), NodeId::new(3), u32::MAX).unwrap();
        assert_eq!(cut.len(), 2);
        let mut cut_mask = no_faults(&g);
        for e in cut {
            cut_mask.fault_edge(e);
        }
        let hops = crate::bfs::hop_distances(&g, NodeId::new(0), &cut_mask);
        assert_eq!(hops[3], u32::MAX);
    }

    #[test]
    fn extracted_edge_cut_respects_limit() {
        let g = generators::cycle(6);
        let mask = no_faults(&g);
        assert!(min_edge_cut_st(&g, &mask, NodeId::new(0), NodeId::new(3), 1).is_none());
        assert!(min_edge_cut_st(&g, &mask, NodeId::new(0), NodeId::new(3), 2).is_some());
    }

    #[test]
    fn extracted_vertex_cut_disconnects() {
        // Diamond with a longer arm: cut must be {1, 2}.
        let g = Graph::from_edges(5, [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)]).unwrap();
        let mask = no_faults(&g);
        let cut = min_vertex_cut_st(&g, &mask, NodeId::new(0), NodeId::new(4), u32::MAX).unwrap();
        assert_eq!(cut.len(), 2);
        let mut cut_mask = no_faults(&g);
        for v in cut {
            assert_ne!(v, NodeId::new(0));
            assert_ne!(v, NodeId::new(4));
            cut_mask.fault_vertex(v);
        }
        let hops = crate::bfs::hop_distances(&g, NodeId::new(0), &cut_mask);
        assert_eq!(hops[4], u32::MAX);
    }

    #[test]
    fn vertex_cut_none_for_adjacent_or_over_limit() {
        let g = generators::complete(4);
        let mask = no_faults(&g);
        assert!(min_vertex_cut_st(&g, &mask, NodeId::new(0), NodeId::new(1), u32::MAX).is_none());
        let g = generators::petersen(); // 3-connected, non-adjacent 0 and 7
        let mask = no_faults(&g);
        assert!(g.contains_edge(NodeId::new(0), NodeId::new(7)).is_none());
        assert!(min_vertex_cut_st(&g, &mask, NodeId::new(0), NodeId::new(7), 2).is_none());
        let cut = min_vertex_cut_st(&g, &mask, NodeId::new(0), NodeId::new(7), 3).unwrap();
        assert_eq!(cut.len(), 3);
    }
}
