//! Minimum spanning forests (Kruskal).
//!
//! Spanner *lightness* — total spanner weight divided by MST weight — is
//! the standard weight-sensitive quality measure alongside edge count; the
//! metrics module of `spanner-core` and experiment E12 report it. The MST
//! also lower-bounds any connected spanner's weight, which makes the ratio
//! meaningful.

use crate::{Dist, EdgeId, FaultMask, Graph, UnionFind};

/// A minimum spanning forest: the selected edges and their total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningForest {
    /// Chosen edge ids (a forest; one tree per connected component).
    pub edges: Vec<EdgeId>,
    /// Sum of chosen edge weights.
    pub total_weight: Dist,
}

impl SpanningForest {
    /// Number of edges in the forest.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the forest has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Kruskal's algorithm on `graph ∖ mask`; ties broken by edge id, so the
/// result is deterministic.
///
/// # Examples
///
/// ```
/// use spanner_graph::{mst, Dist, FaultMask, Graph};
///
/// let g = Graph::from_weighted_edges(3, [(0, 1, 1), (1, 2, 2), (2, 0, 10)])?;
/// let forest = mst::minimum_spanning_forest(&g, &FaultMask::for_graph(&g));
/// assert_eq!(forest.len(), 2);
/// assert_eq!(forest.total_weight, Dist::finite(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn minimum_spanning_forest(graph: &Graph, mask: &FaultMask) -> SpanningForest {
    let mut order: Vec<EdgeId> = graph
        .edge_ids()
        .filter(|e| {
            let (u, v) = graph.endpoints(*e);
            !mask.is_edge_faulted(*e) && !mask.is_vertex_faulted(u) && !mask.is_vertex_faulted(v)
        })
        .collect();
    order.sort_by_key(|e| (graph.weight(*e), *e));
    let mut uf = UnionFind::new(graph.node_count());
    let mut edges = Vec::new();
    let mut total_weight = Dist::ZERO;
    for e in order {
        let (u, v) = graph.endpoints(e);
        if uf.union(u.index(), v.index()) {
            edges.push(e);
            total_weight = total_weight + graph.weight(e);
        }
    }
    SpanningForest {
        edges,
        total_weight,
    }
}

/// Total MST weight of `graph` (no faults), as a convenience.
pub fn mst_weight(graph: &Graph) -> Dist {
    minimum_spanning_forest(graph, &FaultMask::for_graph(graph)).total_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::NodeId;

    #[test]
    fn tree_input_is_its_own_mst() {
        let g = Graph::from_weighted_edges(4, [(0, 1, 5), (1, 2, 7), (1, 3, 2)]).unwrap();
        let f = minimum_spanning_forest(&g, &FaultMask::for_graph(&g));
        assert_eq!(f.len(), 3);
        assert_eq!(f.total_weight, Dist::finite(14));
    }

    #[test]
    fn cycle_drops_heaviest_edge() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 9)]).unwrap();
        let f = minimum_spanning_forest(&g, &FaultMask::for_graph(&g));
        assert_eq!(f.len(), 3);
        assert_eq!(f.total_weight, Dist::finite(6));
        assert!(!f.edges.contains(&EdgeId::new(3)));
    }

    #[test]
    fn forest_per_component() {
        let g = Graph::from_weighted_edges(5, [(0, 1, 1), (1, 2, 1), (3, 4, 1)]).unwrap();
        let f = minimum_spanning_forest(&g, &FaultMask::for_graph(&g));
        assert_eq!(f.len(), 3); // 2 + 1 across the two components
    }

    #[test]
    fn mask_changes_the_forest() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 1), (1, 2, 2), (2, 0, 3)]).unwrap();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_edge(EdgeId::new(0));
        let f = minimum_spanning_forest(&g, &mask);
        assert_eq!(f.total_weight, Dist::finite(5));
        mask.fault_vertex(NodeId::new(1));
        let f = minimum_spanning_forest(&g, &mask);
        assert_eq!(f.edges, vec![EdgeId::new(2)]);
    }

    #[test]
    fn mst_weight_of_unit_connected_graph_is_n_minus_1() {
        let g = generators::complete(8);
        assert_eq!(mst_weight(&g), Dist::finite(7));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let g = generators::complete(6); // all unit weights
        let a = minimum_spanning_forest(&g, &FaultMask::for_graph(&g));
        let b = minimum_spanning_forest(&g, &FaultMask::for_graph(&g));
        assert_eq!(a, b);
    }
}
