//! An indexed binary min-heap with `decrease_key`.
//!
//! `std::collections::BinaryHeap` has no decrease-key, so Dijkstra over it
//! must push stale entries and skip them on pop. That is fine for one-shot
//! queries, but the fault-set oracles run Dijkstra thousands of times on the
//! same small graphs, where the stale-entry traffic dominates. This heap
//! keys entries by a dense `usize` id (a node index) and supports
//! `push_or_decrease` in O(log n) with no duplicates.

use std::fmt;

/// A binary min-heap over `(key: usize, priority: P)` pairs, with at most one
/// entry per key and O(log n) decrease-key.
///
/// Keys must be smaller than the capacity passed to [`IndexedHeap::new`].
///
/// # Examples
///
/// ```
/// use spanner_graph::IndexedHeap;
///
/// let mut heap = IndexedHeap::new(10);
/// heap.push_or_decrease(3, 30u64);
/// heap.push_or_decrease(7, 10);
/// heap.push_or_decrease(3, 5); // decrease key 3's priority
/// assert_eq!(heap.pop(), Some((3, 5)));
/// assert_eq!(heap.pop(), Some((7, 10)));
/// assert_eq!(heap.pop(), None);
/// ```
#[derive(Clone)]
pub struct IndexedHeap<P> {
    /// Heap-ordered array of (key, priority).
    data: Vec<(usize, P)>,
    /// positions[key] = index into `data`, or `usize::MAX` when absent.
    positions: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl<P: Ord + Copy> IndexedHeap<P> {
    /// Creates an empty heap for keys in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        IndexedHeap {
            data: Vec::new(),
            positions: vec![ABSENT; capacity],
        }
    }

    /// Returns the number of entries in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the heap has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all entries, keeping the capacity.
    pub fn clear(&mut self) {
        for &(key, _) in &self.data {
            self.positions[key] = ABSENT;
        }
        self.data.clear();
    }

    /// Returns the current priority of `key`, if present.
    #[inline]
    pub fn priority(&self, key: usize) -> Option<P> {
        let pos = *self.positions.get(key)?;
        if pos == ABSENT {
            None
        } else {
            Some(self.data[pos].1)
        }
    }

    /// Inserts `key` with `priority`, or lowers its priority if the new value
    /// is smaller. Returns `true` if the heap changed.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside the capacity given to [`IndexedHeap::new`].
    pub fn push_or_decrease(&mut self, key: usize, priority: P) -> bool {
        let pos = self.positions[key];
        if pos == ABSENT {
            self.data.push((key, priority));
            let idx = self.data.len() - 1;
            self.positions[key] = idx;
            self.sift_up(idx);
            true
        } else if priority < self.data[pos].1 {
            self.data[pos].1 = priority;
            self.sift_up(pos);
            true
        } else {
            false
        }
    }

    /// Removes and returns the entry with the smallest priority.
    ///
    /// Ties are broken arbitrarily (but deterministically for a fixed
    /// insertion sequence).
    pub fn pop(&mut self) -> Option<(usize, P)> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let (key, priority) = self.data.pop().expect("non-empty");
        self.positions[key] = ABSENT;
        if !self.data.is_empty() {
            self.positions[self.data[0].0] = 0;
            self.sift_down(0);
        }
        Some((key, priority))
    }

    /// Returns the minimum entry without removing it.
    pub fn peek(&self) -> Option<(usize, P)> {
        self.data.first().copied()
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.data[idx].1 < self.data[parent].1 {
                self.data.swap(idx, parent);
                self.positions[self.data[idx].0] = idx;
                self.positions[self.data[parent].0] = parent;
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        let len = self.data.len();
        loop {
            let left = 2 * idx + 1;
            let right = left + 1;
            let mut smallest = idx;
            if left < len && self.data[left].1 < self.data[smallest].1 {
                smallest = left;
            }
            if right < len && self.data[right].1 < self.data[smallest].1 {
                smallest = right;
            }
            if smallest == idx {
                break;
            }
            self.data.swap(idx, smallest);
            self.positions[self.data[idx].0] = idx;
            self.positions[self.data[smallest].0] = smallest;
            idx = smallest;
        }
    }
}

impl<P: fmt::Debug> fmt::Debug for IndexedHeap<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IndexedHeap")
            .field("len", &self.data.len())
            .field("entries", &self.data)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut h = IndexedHeap::new(10);
        for (k, p) in [(0, 50u64), (1, 10), (2, 40), (3, 20), (4, 30)] {
            h.push_or_decrease(k, p);
        }
        let order: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(order, vec![(1, 10), (3, 20), (4, 30), (2, 40), (0, 50)]);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedHeap::new(4);
        h.push_or_decrease(0, 100u64);
        h.push_or_decrease(1, 50);
        assert!(h.push_or_decrease(0, 1));
        assert_eq!(h.pop(), Some((0, 1)));
    }

    #[test]
    fn increase_is_ignored() {
        let mut h = IndexedHeap::new(4);
        h.push_or_decrease(0, 5u64);
        assert!(!h.push_or_decrease(0, 10));
        assert_eq!(h.priority(0), Some(5));
    }

    #[test]
    fn clear_resets_positions() {
        let mut h = IndexedHeap::new(4);
        h.push_or_decrease(2, 7u64);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.priority(2), None);
        h.push_or_decrease(2, 3);
        assert_eq!(h.pop(), Some((2, 3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = IndexedHeap::new(4);
        h.push_or_decrease(1, 9u64);
        assert_eq!(h.peek(), Some((1, 9)));
        assert_eq!(h.len(), 1);
    }

    /// Model test against a sorted reference under a random workload.
    #[test]
    fn model_test_against_sorted_reference() {
        // Simple deterministic LCG so the test has no rand dependency here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 64;
            let mut h = IndexedHeap::new(n);
            let mut best = vec![u64::MAX; n];
            for _ in 0..200 {
                let key = (next() % n as u64) as usize;
                let pri = next() % 1000;
                h.push_or_decrease(key, pri);
                if pri < best[key] {
                    best[key] = pri;
                }
            }
            let mut expected: Vec<(usize, u64)> = best
                .iter()
                .enumerate()
                .filter(|(_, &p)| p != u64::MAX)
                .map(|(k, &p)| (k, p))
                .collect();
            expected.sort_by_key(|&(k, p)| (p, k));
            let mut actual: Vec<(usize, u64)> = std::iter::from_fn(|| h.pop()).collect();
            // The heap breaks priority ties arbitrarily; normalize.
            actual.sort_by_key(|&(k, p)| (p, k));
            assert_eq!(actual, expected);
        }
    }
}
