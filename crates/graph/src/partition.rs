//! Vertex-set partitioning for sharded spanner construction.
//!
//! [`bfs_balls`] grows BFS balls over any [`GraphView`]: seeds are
//! visited in a deterministic seeded shuffle, each unassigned seed
//! starts a new shard, and the shard absorbs unassigned vertices in
//! breadth-first order until it reaches the target size. The result is
//! a [`Partition`] — a total, locality-preserving assignment whose
//! shards are connected in their induced subgraphs (every non-seed
//! member was reached through an already-assigned neighbor).
//!
//! The partitioned FT-greedy construction (`spanner_core::partition`)
//! builds a fault tolerant spanner per shard and then stitches across
//! shard boundaries; [`Partition::boundary`] and
//! [`Partition::cross_edge_count`] expose the cut structure that stitch
//! pass works from.
//!
//! Everything here is deterministic: the same view, target size, and
//! seed produce the same partition on every platform (the shuffle uses
//! a fixed splitmix64 stream, not the `rand` crate).

use crate::adjacency::GraphView;
use crate::bitset::BitSet;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// A total assignment of a graph's vertices to shards.
///
/// Produced by [`bfs_balls`]. Shard ids are dense (`0..shard_count()`)
/// and every vertex belongs to exactly one shard.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Shard id per vertex, indexed by `NodeId::index()`.
    shard_of: Vec<u32>,
    /// Member lists per shard, in the order vertices were absorbed
    /// (seed first, then breadth-first).
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// Number of vertices partitioned.
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard `node` belongs to.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// The members of `shard`, seed first then breadth-first order.
    pub fn members(&self, shard: usize) -> &[NodeId] {
        &self.members[shard]
    }

    /// Iterates over all shards' member lists.
    pub fn shards(&self) -> impl ExactSizeIterator<Item = &[NodeId]> {
        self.members.iter().map(Vec::as_slice)
    }

    /// Size of the largest shard.
    pub fn largest_shard(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The boundary set: vertices with at least one neighbor in a
    /// different shard (computed from `view`'s edge list).
    pub fn boundary<V: GraphView>(&self, view: &V) -> BitSet {
        let mut boundary = BitSet::new(self.shard_of.len());
        for e in 0..view.edge_count() {
            let (u, v) = view.edge_endpoints(crate::ids::EdgeId::new(e));
            if self.shard_of[u.index()] != self.shard_of[v.index()] {
                boundary.insert(u.index());
                boundary.insert(v.index());
            }
        }
        boundary
    }

    /// Number of edges of `view` whose endpoints lie in different shards.
    pub fn cross_edge_count<V: GraphView>(&self, view: &V) -> usize {
        (0..view.edge_count())
            .filter(|&e| {
                let (u, v) = view.edge_endpoints(crate::ids::EdgeId::new(e));
                self.shard_of[u.index()] != self.shard_of[v.index()]
            })
            .count()
    }
}

/// The splitmix64 step: a fixed, platform-independent pseudo-random
/// stream for the seed shuffle (no `rand` dependency, so partitions are
/// reproducible from the `(target, seed)` pair alone).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Partitions `view`'s vertices into BFS balls of at most `target`
/// vertices each.
///
/// Seeds are drawn in a deterministic shuffle of the vertex order
/// driven by `seed`; each unassigned seed grows a ball breadth-first
/// over unassigned vertices until it holds `target` members or its
/// frontier dies out (so balls never straddle connected components,
/// and every shard is connected in its induced subgraph). `target` is
/// clamped to at least 1; isolated vertices become singleton shards.
pub fn bfs_balls<V: GraphView>(view: &V, target: usize, seed: u64) -> Partition {
    let n = view.node_count();
    let target = target.max(1);
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut state = seed ^ 0x6a09_e667_f3bc_c908; // offset so seed 0 still mixes
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut shard_of = vec![u32::MAX; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut queue = VecDeque::new();
    for &s in &order {
        let s = s as usize;
        if shard_of[s] != u32::MAX {
            continue;
        }
        let id = members.len() as u32;
        shard_of[s] = id;
        let mut ball = vec![NodeId::new(s)];
        queue.clear();
        queue.push_back(s);
        while ball.len() < target {
            let Some(u) = queue.pop_front() else { break };
            view.for_each_neighbor(NodeId::new(u), |nb, _, _| {
                if ball.len() < target && shard_of[nb.index()] == u32::MAX {
                    shard_of[nb.index()] = id;
                    ball.push(nb);
                    queue.push_back(nb.index());
                }
            });
        }
        members.push(ball);
    }
    Partition { shard_of, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, grid};
    use crate::{Graph, UnionFind};

    fn check_total(p: &Partition, n: usize) {
        assert_eq!(p.node_count(), n);
        let mut counted = 0;
        for (i, ball) in p.shards().enumerate() {
            assert!(!ball.is_empty());
            for &v in ball {
                assert_eq!(p.shard_of(v), i);
            }
            counted += ball.len();
        }
        assert_eq!(counted, n, "partition must be total");
    }

    #[test]
    fn balls_cover_and_respect_target() {
        let g = grid(8, 8);
        for target in [1usize, 4, 16, 64, 1000] {
            let p = bfs_balls(&g, target, 7);
            check_total(&p, 64);
            assert!(p.largest_shard() <= target.max(1));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid(6, 7);
        let a = bfs_balls(&g, 8, 42);
        let b = bfs_balls(&g, 8, 42);
        assert_eq!(a.shard_of, b.shard_of);
        let c = bfs_balls(&g, 8, 43);
        // A different seed is allowed to (and here does) shuffle seeds
        // differently.
        assert_ne!(a.shard_of, c.shard_of);
    }

    #[test]
    fn shards_are_connected_in_induced_subgraph() {
        let g = grid(9, 5);
        let p = bfs_balls(&g, 7, 3);
        // Union-find restricted to intra-shard edges: every shard must
        // collapse to one component.
        let mut uf = UnionFind::new(g.node_count());
        for (_, e) in g.edges() {
            if p.shard_of(e.u()) == p.shard_of(e.v()) {
                uf.union(e.u().index(), e.v().index());
            }
        }
        for ball in p.shards() {
            let root = uf.find(ball[0].index());
            for &v in ball {
                assert_eq!(uf.find(v.index()), root);
            }
        }
    }

    #[test]
    fn disconnected_components_stay_separate() {
        // Two 3-cliques with no connection: balls cannot straddle.
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge_unchecked(
                NodeId::new(u),
                NodeId::new(v),
                crate::weight::Weight::new(1).unwrap(),
            );
        }
        let p = bfs_balls(&g, 6, 11);
        check_total(&p, 6);
        for ball in p.shards() {
            let side = ball[0].index() / 3;
            assert!(ball.iter().all(|v| v.index() / 3 == side));
        }
    }

    #[test]
    fn boundary_and_cross_edges_match() {
        let g = grid(6, 6);
        let p = bfs_balls(&g, 9, 5);
        let boundary = p.boundary(&g);
        let mut cross = 0;
        for (_, e) in g.edges() {
            if p.shard_of(e.u()) != p.shard_of(e.v()) {
                cross += 1;
                assert!(boundary.contains(e.u().index()));
                assert!(boundary.contains(e.v().index()));
            }
        }
        assert_eq!(cross, p.cross_edge_count(&g));
        // A 6x6 grid in 9-vertex balls must have some cut.
        assert!(cross > 0);
        // And a non-boundary interior vertex exists for this layout
        // only if some ball fully surrounds one; just sanity-check the
        // boundary is not everything when shards are large.
        let p1 = bfs_balls(&g, 36, 5);
        assert_eq!(p1.cross_edge_count(&g), 0);
        assert!(p1.boundary(&g).is_empty());
    }

    #[test]
    fn singleton_target_gives_singletons() {
        let g = complete(5);
        let p = bfs_balls(&g, 1, 0);
        assert_eq!(p.shard_count(), 5);
        assert!(p.shards().all(|b| b.len() == 1));
        assert_eq!(p.cross_edge_count(&g), g.edge_count());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let p = bfs_balls(&g, 4, 9);
        assert_eq!(p.shard_count(), 0);
        assert_eq!(p.node_count(), 0);
    }
}
