//! Whole-graph transformations: complement, disjoint union, relabeling,
//! masked compaction.
//!
//! These are the glue operations the experiment harness and tests use to
//! assemble instances (e.g. multi-component stress tests, complement
//! tricks for dense inputs, compacting a faulted graph into a clean one).

use crate::{FaultMask, Graph, NodeId, Weight};

/// The complement graph: same vertices, an (unit-weight) edge exactly
/// where `graph` has none.
///
/// # Examples
///
/// ```
/// use spanner_graph::{transform, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1)])?;
/// let c = transform::complement(&g);
/// assert_eq!(c.edge_count(), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn complement(graph: &Graph) -> Graph {
    let n = graph.node_count();
    let mut present = vec![false; n * n];
    for (_, e) in graph.edges() {
        present[e.u().index() * n + e.v().index()] = true;
        present[e.v().index() * n + e.u().index()] = true;
    }
    let mut out = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if !present[u * n + v] {
                out.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
            }
        }
    }
    out
}

/// Disjoint union: `b`'s vertices are appended after `a`'s.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let offset = a.node_count();
    let mut out =
        Graph::with_edge_capacity(offset + b.node_count(), a.edge_count() + b.edge_count());
    for (_, e) in a.edges() {
        out.add_edge_unchecked(e.u(), e.v(), e.weight());
    }
    for (_, e) in b.edges() {
        out.add_edge_unchecked(
            NodeId::new(e.u().index() + offset),
            NodeId::new(e.v().index() + offset),
            e.weight(),
        );
    }
    out
}

/// Relabels vertices by `permutation` (old id → new id). Edge ids keep
/// their order.
///
/// # Panics
///
/// Panics if `permutation` is not a permutation of `0..node_count`.
pub fn relabel(graph: &Graph, permutation: &[NodeId]) -> Graph {
    let n = graph.node_count();
    assert_eq!(permutation.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for p in permutation {
        assert!(p.index() < n && !seen[p.index()], "not a permutation");
        seen[p.index()] = true;
    }
    let mut out = Graph::with_edge_capacity(n, graph.edge_count());
    for (_, e) in graph.edges() {
        out.add_edge_unchecked(
            permutation[e.u().index()],
            permutation[e.v().index()],
            e.weight(),
        );
    }
    out
}

/// Materializes `graph ∖ mask` as a standalone graph: faulted vertices
/// are removed (ids compacted) and faulted edges dropped. Returns the
/// graph and the kept-vertex list (new id → old id).
pub fn compact(graph: &Graph, mask: &FaultMask) -> (Graph, Vec<NodeId>) {
    let kept: Vec<NodeId> = graph
        .nodes()
        .filter(|v| !mask.is_vertex_faulted(*v))
        .collect();
    let mut new_id = vec![usize::MAX; graph.node_count()];
    for (i, v) in kept.iter().enumerate() {
        new_id[v.index()] = i;
    }
    let mut out = Graph::new(kept.len());
    for (id, e) in graph.edges() {
        if mask.is_edge_faulted(id) {
            continue;
        }
        let (nu, nv) = (new_id[e.u().index()], new_id[e.v().index()]);
        if nu != usize::MAX && nv != usize::MAX {
            out.add_edge_unchecked(NodeId::new(nu), NodeId::new(nv), e.weight());
        }
    }
    (out, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::EdgeId;

    #[test]
    fn complement_of_complement_is_identity_in_size() {
        let g = generators::cycle(6);
        let cc = complement(&complement(&g));
        assert_eq!(cc.edge_count(), g.edge_count());
        for (_, e) in g.edges() {
            assert!(cc.contains_edge(e.u(), e.v()).is_some());
        }
    }

    #[test]
    fn complement_of_complete_is_empty() {
        let g = generators::complete(5);
        assert_eq!(complement(&g).edge_count(), 0);
    }

    #[test]
    fn disjoint_union_counts() {
        let a = generators::cycle(3);
        let b = generators::path(4);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.node_count(), 7);
        assert_eq!(u.edge_count(), 6);
        // No edges across the parts.
        assert!(u.contains_edge(NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = generators::path(4); // 0-1-2-3
        let perm: Vec<NodeId> = [3usize, 2, 1, 0].into_iter().map(NodeId::new).collect();
        let r = relabel(&g, &perm);
        assert!(r.contains_edge(NodeId::new(3), NodeId::new(2)).is_some());
        assert!(r.contains_edge(NodeId::new(1), NodeId::new(0)).is_some());
        assert_eq!(r.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_duplicates() {
        let g = generators::path(3);
        let perm: Vec<NodeId> = [0usize, 0, 1].into_iter().map(NodeId::new).collect();
        let _ = relabel(&g, &perm);
    }

    #[test]
    fn compact_removes_faults() {
        let g = generators::cycle(5);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(2));
        mask.fault_edge(EdgeId::new(4)); // edge 4-0
        let (c, kept) = compact(&g, &mask);
        assert_eq!(c.node_count(), 4);
        assert_eq!(
            kept,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(3),
                NodeId::new(4)
            ]
        );
        // Surviving edges: (0,1) and (3,4): edges through vertex 2 and the
        // faulted edge are gone.
        assert_eq!(c.edge_count(), 2);
    }

    #[test]
    fn compact_with_no_faults_is_copy() {
        let g = generators::complete(4);
        let (c, kept) = compact(&g, &FaultMask::for_graph(&g));
        assert_eq!(c.edge_count(), g.edge_count());
        assert_eq!(kept.len(), 4);
    }
}
