//! Girth: the length (edge count) of a shortest cycle.
//!
//! The size bounds in Bodwin–Patel are stated through the extremal function
//! `b(n, k)` = max edges of an `n`-vertex graph with girth greater than `k`.
//! We therefore need to (a) compute the girth of constructed witnesses and
//! (b) quickly test "does this graph contain a cycle of at most `k+1`
//! edges?". Girth here is always *unweighted* (edge count), matching the
//! paper's definition of blocking sets over cycles "on ≤ k edges".
//!
//! Algorithm: BFS from every vertex; the first non-tree edge closing two
//! BFS branches at depths `d(u)`, `d(v)` witnesses a cycle of length
//! `d(u) + d(v) + 1`. Over all roots this finds the exact girth of an
//! undirected simple graph in O(n·m), with early cutoff at the best bound
//! found so far.

use crate::{FaultMask, Graph, NodeId};
use std::collections::VecDeque;

/// The girth of `graph ∖ mask`: `Some(len)` of a shortest cycle, or `None`
/// for forests.
///
/// # Examples
///
/// ```
/// use spanner_graph::{girth, FaultMask, Graph};
///
/// let c5 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
/// let mask = FaultMask::for_graph(&c5);
/// assert_eq!(girth::girth(&c5, &mask), Some(5));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn girth(graph: &Graph, mask: &FaultMask) -> Option<usize> {
    girth_up_to(graph, mask, usize::MAX)
}

/// Like [`girth`], but only guarantees exactness up to `limit`: if the girth
/// is at most `limit`, it is returned exactly; otherwise the result is either
/// `None` or `Some(len)` of *some* cycle longer than `limit` (whatever the
/// pruned search happened to see), which still certifies "no cycle of at
/// most `limit` edges".
///
/// This is the primitive behind blocking-set and peeling verification: the
/// paper only ever asks about cycles of at most `k + 1` edges, and pruning
/// the per-root BFS at depth `limit / 2` makes the check cheap.
pub fn girth_up_to(graph: &Graph, mask: &FaultMask, limit: usize) -> Option<usize> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    let mut best: usize = usize::MAX;
    let mut dist = vec![u32::MAX; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for root in graph.nodes() {
        if mask.is_vertex_faulted(root) {
            continue;
        }
        // BFS from root, pruned at depth best/2 (deeper vertices cannot be
        // part of a cycle shorter than `best` through this root).
        dist.fill(u32::MAX);
        parent_edge.fill(u32::MAX);
        queue.clear();
        dist[root.index()] = 0;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v.index()];
            // A cycle through root found at depth dv has length >= 2*dv + 1,
            // and every cycle of length <= limit is detected by a pop at
            // depth <= limit/2; prune on whichever bound bites first.
            if 2 * (dv as usize) + 1 >= best || dv as usize > limit / 2 {
                break;
            }
            for (to, eid) in graph.neighbors(v) {
                if !mask.allows(to, eid) {
                    continue;
                }
                if eid.raw() == parent_edge[v.index()] {
                    continue; // don't traverse the tree edge backwards
                }
                if dist[to.index()] == u32::MAX {
                    dist[to.index()] = dv + 1;
                    parent_edge[to.index()] = eid.raw();
                    queue.push_back(to);
                } else {
                    // Non-tree edge: cycle through root of this length.
                    let cycle_len = (dv + 1 + dist[to.index()]) as usize;
                    if cycle_len < best {
                        best = cycle_len;
                        if best <= limit && best <= 3 {
                            return Some(best); // cannot do better than a triangle
                        }
                    }
                }
            }
        }
    }
    if best == usize::MAX {
        None
    } else {
        Some(best)
    }
}

/// Returns `true` if `graph ∖ mask` has girth strictly greater than `k`
/// (i.e. no cycle on at most `k` edges). Forests qualify for every `k`.
///
/// # Examples
///
/// ```
/// use spanner_graph::{girth, FaultMask, Graph};
///
/// let c5 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
/// let mask = FaultMask::for_graph(&c5);
/// assert!(girth::has_girth_greater_than(&c5, &mask, 4));
/// assert!(!girth::has_girth_greater_than(&c5, &mask, 5));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn has_girth_greater_than(graph: &Graph, mask: &FaultMask, k: usize) -> bool {
    match girth_up_to(graph, mask, k) {
        None => true,
        Some(g) => g > k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeId;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn girth_of_cycles() {
        for n in 3..=10 {
            let g = cycle(n);
            let mask = FaultMask::for_graph(&g);
            assert_eq!(girth(&g, &mask), Some(n), "C_{n}");
        }
    }

    #[test]
    fn girth_of_tree_is_none() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth(&g, &mask), None);
        assert!(has_girth_greater_than(&g, &mask, 1_000_000));
    }

    #[test]
    fn girth_of_complete_graph_is_three() {
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth(&g, &mask), Some(3));
    }

    #[test]
    fn girth_of_complete_bipartite_is_four() {
        // K_{3,3}
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 3..6 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(6, edges).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth(&g, &mask), Some(4));
    }

    #[test]
    fn petersen_girth_is_five() {
        // Outer C5, inner pentagram, spokes.
        let mut edges = Vec::new();
        for i in 0..5 {
            edges.push((i, (i + 1) % 5)); // outer
            edges.push((5 + i, 5 + (i + 2) % 5)); // inner
            edges.push((i, 5 + i)); // spokes
        }
        let g = Graph::from_edges(10, edges).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth(&g, &mask), Some(5));
    }

    #[test]
    fn fault_can_increase_girth() {
        // Triangle plus a pendant 4-cycle sharing one vertex.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 2)]).unwrap();
        let mut mask = FaultMask::for_graph(&g);
        assert_eq!(girth(&g, &mask), Some(3));
        mask.fault_vertex(NodeId::new(0));
        assert_eq!(girth(&g, &mask), Some(4));
    }

    #[test]
    fn edge_fault_can_remove_cycle() {
        let g = cycle(4);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_edge(EdgeId::new(0));
        assert_eq!(girth(&g, &mask), None);
    }

    #[test]
    fn has_girth_greater_than_boundaries() {
        let g = cycle(6);
        let mask = FaultMask::for_graph(&g);
        assert!(has_girth_greater_than(&g, &mask, 5));
        assert!(!has_girth_greater_than(&g, &mask, 6));
        assert!(!has_girth_greater_than(&g, &mask, 7));
    }

    #[test]
    fn two_cycles_reports_shorter() {
        // C3 and C5 disjoint.
        let mut edges = vec![(0, 1), (1, 2), (2, 0)];
        edges.extend([(3, 4), (4, 5), (5, 6), (6, 7), (7, 3)]);
        let g = Graph::from_edges(8, edges).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth(&g, &mask), Some(3));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth(&g, &mask), None);
    }

    #[test]
    fn girth_even_cycle_exact() {
        // Two vertices joined by two internally disjoint paths of lengths 2
        // and 4 => girth 6 via even cycle.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 3), (3, 4), (4, 5), (5, 2)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(girth(&g, &mask), Some(6));
    }
}
