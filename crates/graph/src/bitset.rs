//! A compact fixed-capacity bit set.
//!
//! Fault masks and visited sets are on the hot path of every shortest-path
//! query the fault-set oracles issue (there are exponentially many of them in
//! `f`), so we want O(1) membership tests over dense integer keys without
//! hashing. This module provides a minimal word-packed bit set tailored to
//! that use, with constant-time insert/remove/contains and fast iteration
//! over set bits.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-capacity set of small integers, packed into 64-bit words.
///
/// # Examples
///
/// ```
/// use spanner_graph::BitSet;
///
/// let mut set = BitSet::new(100);
/// set.insert(3);
/// set.insert(64);
/// assert!(set.contains(3));
/// assert!(!set.contains(4));
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
            len: 0,
        }
    }

    /// Returns the capacity (one past the largest storable value).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of values currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set contains no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `value` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity` (in debug builds; release builds panic
    /// via the slice index).
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        debug_assert!(value < self.capacity, "bitset index out of range");
        self.words[value / WORD_BITS] & (1u64 << (value % WORD_BITS)) != 0
    }

    /// Inserts `value`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        debug_assert!(value < self.capacity, "bitset index out of range");
        let word = &mut self.words[value / WORD_BITS];
        let mask = 1u64 << (value % WORD_BITS);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `value`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        debug_assert!(value < self.capacity, "bitset index out of range");
        let word = &mut self.words[value / WORD_BITS];
        let mask = 1u64 << (value % WORD_BITS);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every value, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Grows the capacity to at least `capacity`, keeping current contents.
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.capacity {
            self.capacity = capacity;
            self.words.resize(capacity.div_ceil(WORD_BITS), 0);
        }
    }

    /// Grows to at least `capacity`, returning `true` if the backing word
    /// array actually grew (capacity bumps within the same word are free
    /// and report `false`). Scratch owners use this to count genuine
    /// reallocation/zeroing work.
    pub fn grow_tracked(&mut self, capacity: usize) -> bool {
        let new_words = capacity.div_ceil(WORD_BITS);
        let grew = new_words > self.words.len();
        if capacity > self.capacity {
            self.capacity = capacity;
        }
        if grew {
            self.words.resize(new_words, 0);
        }
        grew
    }

    /// Makes `self` an exact copy of `other`, reusing the existing word
    /// allocation when it is large enough.
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.capacity = other.capacity;
        self.len = other.len;
    }

    /// Iterates over the values in the set in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_index: 0,
            current: if self.words.is_empty() {
                0
            } else {
                self.words[0]
            },
        }
    }

    /// Returns `true` if `self` and `other` share no values.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other.capacity() > self.capacity()`.
    pub fn union_with(&mut self, other: &BitSet) {
        assert!(
            other.capacity <= self.capacity,
            "cannot union a larger bitset into a smaller one"
        );
        for (i, w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to the maximum value seen.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().copied().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for v in values {
            set.insert(v);
        }
        set
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            if v >= self.capacity {
                self.grow(v + 1);
            }
            self.insert(v);
        }
    }
}

/// Iterator over set bits, produced by [`BitSet::iter`].
#[derive(Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_yields_sorted_values() {
        let mut s = BitSet::new(200);
        for v in [199, 0, 64, 65, 3] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 65, 199]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(5);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(5));
    }

    #[test]
    fn grow_preserves_contents() {
        let mut s = BitSet::new(10);
        s.insert(9);
        s.grow(1000);
        assert!(s.contains(9));
        s.insert(999);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn disjointness() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(2);
        assert!(a.is_disjoint(&b));
        b.insert(1);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn union_with_merges() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(70);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 70]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [3usize, 17, 5].into_iter().collect();
        assert!(s.contains(17));
        assert_eq!(s.capacity(), 18);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn extend_grows_automatically() {
        let mut s = BitSet::new(4);
        s.extend([2usize, 100]);
        assert!(s.contains(100));
    }

    #[test]
    fn empty_set_iterates_nothing() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        let s = BitSet::new(64);
        assert_eq!(s.iter().count(), 0);
    }
}
