//! Fault-masked, bound-aware Dijkstra.
//!
//! Two features matter for spanner construction beyond textbook Dijkstra:
//!
//! 1. **Fault masks** — queries run against `H ∖ F` for many candidate fault
//!    sets `F` without copying the graph ([`FaultMask`]).
//! 2. **Distance bounds** — the greedy test only asks whether
//!    `dist(u, v) ≤ k·w`; the search can stop as soon as the frontier passes
//!    the bound, which on bounded queries turns Dijkstra from O(m log n)
//!    into "O(size of the k·w ball)".
//!
//! [`DijkstraEngine`] owns the scratch arrays (distances, parents, heap) and
//! reuses them across queries via epoch stamping, so a query allocates
//! nothing after warm-up. The fault-set search oracles issue up to `O(k^f)`
//! queries per greedy edge; this reuse is what keeps them tractable.
//!
//! # Scratch-reuse contract
//!
//! The engine is generic over [`GraphView`], so the same monomorphized
//! loop serves both the growable [`Graph`](crate::Graph) and the flat
//! [`IncrementalCsr`](crate::IncrementalCsr) layouts. Two rules keep the
//! hot path allocation-free:
//!
//! 1. **Engine scratch grows, never shrinks.** `prepare` resizes the
//!    distance/parent/epoch arrays only when a larger graph appears;
//!    steady-state queries recycle them via epoch stamping.
//! 2. **Path extraction writes into caller buffers.**
//!    [`DijkstraEngine::shortest_path_bounded_into`] fills a caller-owned
//!    [`PathScratch`] (clearing, not reallocating, its vectors).
//!    [`DijkstraEngine::shortest_path_bounded`] is the allocating
//!    convenience wrapper; loops should prefer the `_into` form.

use crate::adjacency::GraphView;
use crate::{Dist, EdgeId, FaultMask, IndexedHeap, NodeId, Weight};

/// A shortest path found by [`DijkstraEngine::shortest_path_bounded`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShortestPath {
    /// Total weight of the path.
    pub dist: Dist,
    /// Vertices from source to target, inclusive.
    pub nodes: Vec<NodeId>,
    /// Edges in path order (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeId>,
}

impl ShortestPath {
    /// The vertices strictly between source and target.
    ///
    /// These are the branching candidates for vertex fault search: any fault
    /// set that blocks this path must contain one of them (or an edge).
    pub fn interior_nodes(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }

    /// Number of edges on the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the path is a single vertex (source == target).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// A reusable shortest-path buffer for
/// [`DijkstraEngine::shortest_path_bounded_into`].
///
/// Holds the same data as [`ShortestPath`] but is designed to be owned by
/// a long-lived caller (a fault oracle's per-construction scratch) and
/// refilled on every query without reallocating.
#[derive(Clone, Debug, Default)]
pub struct PathScratch {
    dist: Dist,
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl PathScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        PathScratch::default()
    }

    /// Total weight of the last extracted path.
    pub fn dist(&self) -> Dist {
        self.dist
    }

    /// Vertices from source to target, inclusive.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edges in path order (`nodes().len() - 1` of them).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// The vertices strictly between source and target (the vertex-model
    /// branching candidates).
    pub fn interior_nodes(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }

    /// Number of edges on the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the path is a single vertex (source == target).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

const NO_PARENT: u32 = u32::MAX;

/// Sentinel for "the last search had no early-stop target".
const NO_TARGET: u32 = u32::MAX;

/// Reusable Dijkstra scratch space for one graph size.
///
/// The engine is sized lazily to the largest graph it has seen; it can be
/// shared across graphs as long as node ids fit.
///
/// # Examples
///
/// ```
/// use spanner_graph::{DijkstraEngine, Dist, FaultMask, Graph, NodeId};
///
/// let g = Graph::from_weighted_edges(4, [(0, 1, 1), (1, 2, 1), (0, 3, 1), (3, 2, 5)])?;
/// let mut engine = DijkstraEngine::new();
/// let mask = FaultMask::for_graph(&g);
/// let d = engine.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::finite(10), &mask);
/// assert_eq!(d, Some(Dist::finite(2)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DijkstraEngine {
    dist: Vec<Dist>,
    parent_node: Vec<u32>,
    parent_edge: Vec<u32>,
    epoch: Vec<u32>,
    current_epoch: u32,
    heap: Option<IndexedHeap<u64>>,
    /// The last search's early-stop target ([`NO_TARGET`] for a full
    /// [`DijkstraEngine::search_from`]-style run) and bound — what
    /// [`DijkstraEngine::extract_path_into`] needs to tell settled
    /// distances from tentative ones.
    last_dst: u32,
    last_bound: Dist,
    /// Number of heap pops across all queries (exposed for experiments that
    /// measure oracle work in machine-independent units).
    pops: u64,
}

impl Default for DijkstraEngine {
    fn default() -> Self {
        DijkstraEngine {
            dist: Vec::new(),
            parent_node: Vec::new(),
            parent_edge: Vec::new(),
            epoch: Vec::new(),
            current_epoch: 0,
            heap: None,
            last_dst: NO_TARGET,
            last_bound: Dist::INFINITE,
            pops: 0,
        }
    }
}

impl DijkstraEngine {
    /// Creates an engine with no allocated scratch space.
    pub fn new() -> Self {
        DijkstraEngine::default()
    }

    /// Total heap pops across all queries so far (a machine-independent
    /// work measure used by the oracle-cost experiments).
    pub fn pop_count(&self) -> u64 {
        self.pops
    }

    /// Resets the pop counter.
    pub fn reset_pop_count(&mut self) {
        self.pops = 0;
    }

    fn prepare(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, Dist::INFINITE);
            self.parent_node.resize(n, NO_PARENT);
            self.parent_edge.resize(n, NO_PARENT);
            self.epoch.resize(n, 0);
            self.heap = Some(IndexedHeap::new(n));
        } else if let Some(heap) = &mut self.heap {
            if heap.is_empty() {
                // nothing to do
            } else {
                heap.clear();
            }
        }
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            // Epoch counter wrapped: invalidate everything explicitly.
            self.epoch.fill(0);
            self.current_epoch = 1;
        }
    }

    #[inline]
    fn is_fresh(&self, v: usize) -> bool {
        self.epoch[v] == self.current_epoch
    }

    #[inline]
    fn touch(&mut self, v: usize) {
        if self.epoch[v] != self.current_epoch {
            self.epoch[v] = self.current_epoch;
            self.dist[v] = Dist::INFINITE;
            self.parent_node[v] = NO_PARENT;
            self.parent_edge[v] = NO_PARENT;
        }
    }

    /// Computes `dist(src, dst)` in `graph ∖ mask`, provided it is at most
    /// `bound`. Returns `None` when the distance exceeds `bound` (including
    /// unreachable). `src == dst` always yields `Some(Dist::ZERO)` unless the
    /// vertex itself is faulted.
    pub fn dist_bounded<V: GraphView>(
        &mut self,
        graph: &V,
        src: NodeId,
        dst: NodeId,
        bound: Dist,
        mask: &FaultMask,
    ) -> Option<Dist> {
        self.run(graph, src, Some(dst), bound, mask);
        let d = self.query_dist(dst);
        (d.is_finite() && d <= bound).then_some(d)
    }

    /// Like [`DijkstraEngine::dist_bounded`], but also reconstructs one
    /// shortest path into the reusable `out` buffer. Returns `true` (with
    /// `out` filled) when a path within `bound` exists; on `false`, `out`
    /// is cleared.
    ///
    /// This is the zero-allocation form the oracle hot loop uses; see the
    /// module docs for the scratch-reuse contract.
    pub fn shortest_path_bounded_into<V: GraphView>(
        &mut self,
        graph: &V,
        src: NodeId,
        dst: NodeId,
        bound: Dist,
        mask: &FaultMask,
        out: &mut PathScratch,
    ) -> bool {
        self.run(graph, src, Some(dst), bound, mask);
        self.extract_path_into(dst, bound, out)
    }

    /// Runs a full single-source search (no target early-stop), leaving
    /// the settled distances and parent links in the engine for
    /// subsequent [`DijkstraEngine::extract_path_into`] calls. This is
    /// the batch-serving amortization: queries sharing a source share one
    /// search and pay only per-target extraction.
    pub fn search_from<V: GraphView>(
        &mut self,
        graph: &V,
        src: NodeId,
        bound: Dist,
        mask: &FaultMask,
    ) {
        self.run(graph, src, None, bound, mask);
    }

    /// Extracts the shortest path to `dst` from the engine's most recent
    /// search. Returns `true` with `out` filled iff `dst` was **settled**
    /// within `bound` by that search; on `false`, `out` is cleared.
    ///
    /// Dijkstra settles a vertex exactly once, and everything on the
    /// shortest path to `dst` settles before `dst` does — so the
    /// extracted path is **bit-identical** to what a dedicated
    /// `src → dst` query (which stops early at `dst`) would return. The
    /// batch query engine relies on this equivalence.
    ///
    /// Only settled values are trusted: after a target-less search
    /// ([`DijkstraEngine::search_from`]) every vertex within the
    /// *search's* bound is settled, so anything beyond that bound
    /// reports `false` even when a (tentative, possibly suboptimal)
    /// distance exists. After a pair query, only that query's own target
    /// is settled.
    ///
    /// # Panics
    ///
    /// Panics if the most recent search was a pair query for a different
    /// target — its other vertices may hold tentative, suboptimal
    /// distances, so extracting them would be silently wrong.
    pub fn extract_path_into(&self, dst: NodeId, bound: Dist, out: &mut PathScratch) -> bool {
        assert!(
            self.last_dst == NO_TARGET || self.last_dst == dst.raw(),
            "extract_path_into needs a full search (search_from) or the pair query's own target"
        );
        out.nodes.clear();
        out.edges.clear();
        let dist = self.query_dist(dst);
        // For a target-less search, distances beyond the search bound are
        // tentative (the vertex never settled) — refuse them.
        let settled_bound = if self.last_dst == NO_TARGET {
            bound.min(self.last_bound)
        } else {
            bound
        };
        if !dist.is_finite() || dist > settled_bound {
            return false;
        }
        out.dist = dist;
        out.nodes.push(dst);
        let mut cur = dst;
        loop {
            let pn = self.parent_node[cur.index()];
            if pn == NO_PARENT {
                break; // reached the search source
            }
            let pe = self.parent_edge[cur.index()];
            out.edges.push(EdgeId::new(pe as usize));
            cur = NodeId::new(pn as usize);
            out.nodes.push(cur);
        }
        out.nodes.reverse();
        out.edges.reverse();
        true
    }

    /// Like [`DijkstraEngine::dist_bounded`], but also reconstructs one
    /// shortest path. Allocates the result; loops should prefer
    /// [`DijkstraEngine::shortest_path_bounded_into`].
    pub fn shortest_path_bounded<V: GraphView>(
        &mut self,
        graph: &V,
        src: NodeId,
        dst: NodeId,
        bound: Dist,
        mask: &FaultMask,
    ) -> Option<ShortestPath> {
        let mut out = PathScratch::new();
        if self.shortest_path_bounded_into(graph, src, dst, bound, mask, &mut out) {
            Some(ShortestPath {
                dist: out.dist,
                nodes: out.nodes,
                edges: out.edges,
            })
        } else {
            None
        }
    }

    /// Single-source shortest distances in `graph ∖ mask`, stopping at
    /// `bound` (vertices farther than `bound` report `Dist::INFINITE`).
    pub fn sssp_bounded<V: GraphView>(
        &mut self,
        graph: &V,
        src: NodeId,
        bound: Dist,
        mask: &FaultMask,
    ) -> Vec<Dist> {
        self.run(graph, src, None, bound, mask);
        (0..graph.node_count())
            .map(|v| {
                let d = self.query_dist(NodeId::new(v));
                if d <= bound {
                    d
                } else {
                    Dist::INFINITE
                }
            })
            .collect()
    }

    /// Unbounded single-source shortest distances in `graph ∖ mask`.
    pub fn sssp<V: GraphView>(&mut self, graph: &V, src: NodeId, mask: &FaultMask) -> Vec<Dist> {
        self.sssp_bounded(graph, src, Dist::INFINITE, mask)
    }

    fn query_dist(&self, v: NodeId) -> Dist {
        if v.index() < self.epoch.len() && self.is_fresh(v.index()) {
            self.dist[v.index()]
        } else {
            Dist::INFINITE
        }
    }

    fn run<V: GraphView>(
        &mut self,
        graph: &V,
        src: NodeId,
        dst: Option<NodeId>,
        bound: Dist,
        mask: &FaultMask,
    ) {
        let n = graph.node_count();
        self.prepare(n);
        self.last_dst = dst.map(NodeId::raw).unwrap_or(NO_TARGET);
        self.last_bound = bound;
        if mask.is_vertex_faulted(src) {
            return;
        }
        if let Some(d) = dst {
            if mask.is_vertex_faulted(d) {
                return;
            }
        }
        self.touch(src.index());
        self.dist[src.index()] = Dist::ZERO;
        let mut heap = self.heap.take().expect("heap initialized by prepare");
        heap.clear();
        heap.push_or_decrease(src.index(), 0);
        while let Some((v, dv)) = heap.pop() {
            self.pops += 1;
            let dv = Dist::finite(dv);
            if dv > self.dist[v] {
                continue; // stale (cannot happen with indexed heap, but cheap)
            }
            if Some(NodeId::new(v)) == dst {
                break;
            }
            if dv > bound {
                break;
            }
            graph.for_each_neighbor(NodeId::new(v), |to, eid, w: Weight| {
                if !mask.allows(to, eid) {
                    return;
                }
                let cand = dv + w;
                if cand > bound {
                    return;
                }
                self.touch(to.index());
                if cand < self.dist[to.index()] {
                    self.dist[to.index()] = cand;
                    self.parent_node[to.index()] = v as u32;
                    self.parent_edge[to.index()] = eid.raw();
                    heap.push_or_decrease(to.index(), cand.value().expect("finite"));
                }
            });
        }
        self.heap = Some(heap);
    }
}

/// One-shot convenience: `dist(src, dst)` in `graph ∖ mask` if `≤ bound`.
///
/// Allocates a fresh engine; prefer [`DijkstraEngine`] in loops.
///
/// # Examples
///
/// ```
/// use spanner_graph::{dijkstra, Dist, FaultMask, Graph, NodeId};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let mask = FaultMask::for_graph(&g);
/// let d = dijkstra::dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::finite(5), &mask);
/// assert_eq!(d, Some(Dist::finite(2)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn dist_bounded<V: GraphView>(
    graph: &V,
    src: NodeId,
    dst: NodeId,
    bound: Dist,
    mask: &FaultMask,
) -> Option<Dist> {
    DijkstraEngine::new().dist_bounded(graph, src, dst, bound, mask)
}

/// One-shot convenience: unbounded distance, `Dist::INFINITE` if unreachable.
pub fn dist<V: GraphView>(graph: &V, src: NodeId, dst: NodeId, mask: &FaultMask) -> Dist {
    dist_bounded(graph, src, dst, Dist::INFINITE, mask).unwrap_or(Dist::INFINITE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn weighted_diamond() -> Graph {
        // 0 -1- 1 -1- 2  and  0 -1- 3 -5- 2
        Graph::from_weighted_edges(4, [(0, 1, 1), (1, 2, 1), (0, 3, 1), (3, 2, 5)]).unwrap()
    }

    #[test]
    fn finds_shortest_distance() {
        let g = weighted_diamond();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::INFINITE, &mask),
            Some(Dist::finite(2))
        );
    }

    #[test]
    fn respects_bound() {
        let g = weighted_diamond();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::finite(1), &mask),
            None
        );
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::finite(2), &mask),
            Some(Dist::finite(2))
        );
    }

    #[test]
    fn vertex_fault_reroutes() {
        let g = weighted_diamond();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(1));
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::INFINITE, &mask),
            Some(Dist::finite(6))
        );
    }

    #[test]
    fn edge_fault_reroutes() {
        let g = weighted_diamond();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_edge(EdgeId::new(1)); // 1-2
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::INFINITE, &mask),
            Some(Dist::finite(6))
        );
    }

    #[test]
    fn disconnection_reports_none() {
        let g = weighted_diamond();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(1));
        mask.fault_vertex(NodeId::new(3));
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::INFINITE, &mask),
            None
        );
    }

    #[test]
    fn faulted_source_or_target_unreachable() {
        let g = weighted_diamond();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(0));
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::INFINITE, &mask),
            None
        );
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(2), NodeId::new(0), Dist::INFINITE, &mask),
            None
        );
    }

    #[test]
    fn same_node_distance_zero() {
        let g = weighted_diamond();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.dist_bounded(&g, NodeId::new(3), NodeId::new(3), Dist::ZERO, &mask),
            Some(Dist::ZERO)
        );
    }

    #[test]
    fn path_reconstruction_matches_distance() {
        let g = weighted_diamond();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        let p = e
            .shortest_path_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::INFINITE, &mask)
            .unwrap();
        assert_eq!(p.dist, Dist::finite(2));
        assert_eq!(
            p.nodes,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(p.edges.len(), 2);
        assert_eq!(p.interior_nodes(), &[NodeId::new(1)]);
        let total: Dist = p.edges.iter().map(|e| g.weight(*e).to_dist()).sum();
        assert_eq!(total, p.dist);
    }

    #[test]
    fn engine_reuse_across_queries() {
        let g = weighted_diamond();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        for _ in 0..100 {
            assert_eq!(
                e.dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::INFINITE, &mask),
                Some(Dist::finite(2))
            );
        }
        assert!(e.pop_count() > 0);
    }

    #[test]
    fn sssp_matches_pairwise() {
        let g = weighted_diamond();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        let d = e.sssp(&g, NodeId::new(0), &mask);
        assert_eq!(d[0], Dist::ZERO);
        assert_eq!(d[1], Dist::finite(1));
        assert_eq!(d[2], Dist::finite(2));
        assert_eq!(d[3], Dist::finite(1));
    }

    #[test]
    fn sssp_bounded_cuts_off() {
        let g = weighted_diamond();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        let d = e.sssp_bounded(&g, NodeId::new(0), Dist::finite(1), &mask);
        assert_eq!(d[2], Dist::INFINITE);
        assert_eq!(d[1], Dist::finite(1));
    }

    #[test]
    fn one_shot_helpers() {
        let g = weighted_diamond();
        let mask = FaultMask::for_graph(&g);
        assert_eq!(
            dist(&g, NodeId::new(0), NodeId::new(2), &mask),
            Dist::finite(2)
        );
        assert_eq!(
            dist_bounded(&g, NodeId::new(0), NodeId::new(2), Dist::finite(1), &mask),
            None
        );
    }

    #[test]
    fn shared_search_extraction_matches_pair_queries() {
        // One search_from, many extractions — each must be bit-identical
        // to a dedicated early-stopped pair query (the batch-serving
        // equivalence the query engine relies on).
        use crate::generators;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let g = generators::erdos_renyi(30, 0.15, &mut rng);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(7));
        let mut shared = DijkstraEngine::new();
        let mut dedicated = DijkstraEngine::new();
        for src in [0usize, 11, 23] {
            shared.search_from(&g, NodeId::new(src), Dist::INFINITE, &mask);
            for dst in 0..30usize {
                let mut from_shared = PathScratch::new();
                let found =
                    shared.extract_path_into(NodeId::new(dst), Dist::INFINITE, &mut from_shared);
                let direct = dedicated.shortest_path_bounded(
                    &g,
                    NodeId::new(src),
                    NodeId::new(dst),
                    Dist::INFINITE,
                    &mask,
                );
                assert_eq!(found, direct.is_some(), "{src}->{dst} reachability");
                if let Some(p) = direct {
                    assert_eq!(from_shared.dist(), p.dist, "{src}->{dst} dist");
                    assert_eq!(from_shared.nodes(), &p.nodes[..], "{src}->{dst} nodes");
                    assert_eq!(from_shared.edges(), &p.edges[..], "{src}->{dst} edges");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "pair query's own target")]
    fn extraction_after_pair_query_rejects_other_targets() {
        // s-t (1), s-x (5), t-x (1): the early-stopped s→t query leaves x
        // with a tentative dist of 5 (true dist 2). Extracting x would be
        // silently wrong — it must panic instead.
        let g = Graph::from_weighted_edges(3, [(0, 1, 1), (0, 2, 5), (1, 2, 1)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        assert!(e
            .dist_bounded(&g, NodeId::new(0), NodeId::new(1), Dist::INFINITE, &mask)
            .is_some());
        let mut out = PathScratch::new();
        let _ = e.extract_path_into(NodeId::new(2), Dist::INFINITE, &mut out);
    }

    #[test]
    fn bounded_search_extraction_refuses_unsettled_frontier() {
        // Path 0-1-2-3 (unit weights), search bounded at 1: vertex 2 may
        // carry a tentative distance but was never settled — extraction
        // must refuse it rather than trust it, even with a larger
        // extraction bound.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        e.search_from(&g, NodeId::new(0), Dist::finite(1), &mask);
        let mut out = PathScratch::new();
        assert!(e.extract_path_into(NodeId::new(1), Dist::INFINITE, &mut out));
        assert_eq!(out.dist(), Dist::finite(1));
        assert!(
            !e.extract_path_into(NodeId::new(2), Dist::INFINITE, &mut out),
            "beyond the search bound nothing is settled"
        );
    }

    #[test]
    fn path_in_empty_graph_is_none() {
        let g = Graph::new(2);
        let mask = FaultMask::for_graph(&g);
        let mut e = DijkstraEngine::new();
        assert_eq!(
            e.shortest_path_bounded(&g, NodeId::new(0), NodeId::new(1), Dist::INFINITE, &mask),
            None
        );
    }
}
