//! Exact edge weights and path distances.
//!
//! The spanner literature states results for arbitrary positive real weights,
//! but every comparison the algorithms actually perform has the form
//! `dist(u, v) ≤ k · w(u, v)` with integer stretch `k`. Representing weights
//! as `u64` makes those comparisons exact — no epsilon tuning, no flaky
//! tests — and any rational-weight instance can be rescaled into this form.
//!
//! [`Weight`] is a positive edge weight; [`Dist`] is a path length that can
//! additionally be *unreachable* ([`Dist::INFINITE`]). Arithmetic on `Dist`
//! saturates at the infinite sentinel, so summing along paths can never wrap.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// A positive edge weight.
///
/// Weights are strictly positive: zero-weight edges would let spanner
/// algorithms add edges "for free" and break girth-based size arguments.
/// [`Weight::new`] enforces this.
///
/// # Examples
///
/// ```
/// use spanner_graph::Weight;
///
/// let w = Weight::new(3).unwrap();
/// assert_eq!(w.get(), 3);
/// assert_eq!(Weight::UNIT.get(), 1);
/// assert!(Weight::new(0).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Weight(u64);

impl Weight {
    /// The unit weight, used for unweighted graphs.
    pub const UNIT: Weight = Weight(1);

    /// Creates a weight, returning `None` if `value` is zero.
    #[inline]
    pub fn new(value: u64) -> Option<Self> {
        if value == 0 {
            None
        } else {
            Some(Weight(value))
        }
    }

    /// Returns the underlying value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Multiplies this weight by an integer stretch factor, saturating.
    ///
    /// This is the `k · w(u, v)` bound that greedy spanner algorithms
    /// compare shortest-path distances against.
    ///
    /// # Examples
    ///
    /// ```
    /// use spanner_graph::{Dist, Weight};
    ///
    /// let w = Weight::new(4).unwrap();
    /// assert_eq!(w.stretched(3), Dist::finite(12));
    /// ```
    #[inline]
    pub fn stretched(self, stretch: u64) -> Dist {
        Dist(self.0.saturating_mul(stretch).min(Dist::INFINITE.0 - 1))
    }

    /// Converts this weight into a finite distance.
    #[inline]
    pub fn to_dist(self) -> Dist {
        Dist(self.0)
    }
}

impl Default for Weight {
    fn default() -> Self {
        Weight::UNIT
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Weight({})", self.0)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A path distance: either a finite total weight or [`Dist::INFINITE`]
/// (unreachable).
///
/// Addition saturates at the infinite sentinel, so `INFINITE + w` stays
/// `INFINITE` and finite sums cannot wrap around.
///
/// # Examples
///
/// ```
/// use spanner_graph::{Dist, Weight};
///
/// let d = Dist::ZERO + Weight::new(2).unwrap().to_dist();
/// assert_eq!(d, Dist::finite(2));
/// assert!(d < Dist::INFINITE);
/// assert!(Dist::INFINITE + d == Dist::INFINITE);
/// assert!(!Dist::INFINITE.is_finite());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dist(u64);

impl Dist {
    /// The zero distance.
    pub const ZERO: Dist = Dist(0);

    /// The unreachable sentinel; compares greater than every finite distance.
    pub const INFINITE: Dist = Dist(u64::MAX);

    /// Creates a finite distance.
    ///
    /// # Panics
    ///
    /// Panics if `value` equals the infinite sentinel (`u64::MAX`).
    #[inline]
    pub fn finite(value: u64) -> Self {
        assert!(value != u64::MAX, "u64::MAX is reserved for Dist::INFINITE");
        Dist(value)
    }

    /// Returns the finite value, or `None` if unreachable.
    #[inline]
    pub fn value(self) -> Option<u64> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// Returns `true` if this distance is finite (reachable).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 != u64::MAX
    }

    /// Returns the stretch ratio `self / base` as `f64`, or `f64::INFINITY`
    /// when unreachable.
    ///
    /// Used by verification code to report the worst-case stretch of a
    /// candidate spanner.
    #[inline]
    pub fn stretch_over(self, base: Weight) -> f64 {
        match self.value() {
            Some(v) => v as f64 / base.get() as f64,
            None => f64::INFINITY,
        }
    }
}

impl Default for Dist {
    fn default() -> Self {
        Dist::INFINITE
    }
}

impl Add for Dist {
    type Output = Dist;

    #[inline]
    fn add(self, rhs: Dist) -> Dist {
        if self.is_finite() && rhs.is_finite() {
            let sum = self.0.saturating_add(rhs.0);
            // Saturating at MAX would silently become INFINITE; clamp just
            // below so that "huge but finite" stays finite.
            Dist(sum.min(u64::MAX - 1))
        } else {
            Dist::INFINITE
        }
    }
}

impl Add<Weight> for Dist {
    type Output = Dist;

    #[inline]
    fn add(self, rhs: Weight) -> Dist {
        self + rhs.to_dist()
    }
}

impl Sum for Dist {
    fn sum<I: Iterator<Item = Dist>>(iter: I) -> Dist {
        iter.fold(Dist::ZERO, Add::add)
    }
}

impl From<Weight> for Dist {
    fn from(w: Weight) -> Self {
        w.to_dist()
    }
}

impl fmt::Debug for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "Dist({})", self.0)
        } else {
            write!(f, "Dist(inf)")
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "∞")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_rejects_zero() {
        assert!(Weight::new(0).is_none());
        assert_eq!(Weight::new(5).unwrap().get(), 5);
    }

    #[test]
    fn unit_weight_is_default() {
        assert_eq!(Weight::default(), Weight::UNIT);
        assert_eq!(Weight::UNIT.get(), 1);
    }

    #[test]
    fn stretched_multiplies() {
        let w = Weight::new(7).unwrap();
        assert_eq!(w.stretched(3), Dist::finite(21));
        assert_eq!(w.stretched(1), Dist::finite(7));
    }

    #[test]
    fn stretched_saturates_below_infinite() {
        let w = Weight::new(u64::MAX / 2).unwrap();
        let d = w.stretched(1000);
        assert!(d.is_finite());
        assert!(d < Dist::INFINITE);
    }

    #[test]
    fn dist_add_saturates() {
        let big = Dist::finite(u64::MAX - 1);
        let sum = big + Dist::finite(100);
        assert!(sum.is_finite());
        assert_eq!(sum, Dist::finite(u64::MAX - 1));
    }

    #[test]
    fn infinite_absorbs_addition() {
        assert_eq!(Dist::INFINITE + Dist::finite(3), Dist::INFINITE);
        assert_eq!(Dist::finite(3) + Dist::INFINITE, Dist::INFINITE);
    }

    #[test]
    fn infinite_compares_greatest() {
        assert!(Dist::finite(u64::MAX - 1) < Dist::INFINITE);
        assert!(Dist::ZERO < Dist::INFINITE);
    }

    #[test]
    fn dist_sum_of_weights() {
        let ws = [2u64, 3, 5].map(|v| Weight::new(v).unwrap().to_dist());
        let total: Dist = ws.into_iter().sum();
        assert_eq!(total, Dist::finite(10));
    }

    #[test]
    fn stretch_over_reports_ratio() {
        let w = Weight::new(4).unwrap();
        assert_eq!(Dist::finite(12).stretch_over(w), 3.0);
        assert!(Dist::INFINITE.stretch_over(w).is_infinite());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn finite_rejects_sentinel() {
        let _ = Dist::finite(u64::MAX);
    }
}
