//! Subgraph extraction with id mappings back to the parent graph.
//!
//! The Lemma 4 argument ("peel a random induced subgraph, delete blocked
//! edges, observe high girth") constantly moves between a graph and pieces
//! of it. These helpers keep the bookkeeping honest by returning explicit
//! id translations alongside the extracted graph.

use crate::{EdgeId, Graph, NodeId};

/// An induced subgraph together with node/edge id translations.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The extracted graph, with dense ids `0..kept_nodes`.
    pub graph: Graph,
    /// `to_parent_node[new.index()]` is the parent-node id.
    pub to_parent_node: Vec<NodeId>,
    /// `from_parent_node[old.index()]` is the new node id, if kept.
    pub from_parent_node: Vec<Option<NodeId>>,
    /// `to_parent_edge[new_edge.index()]` is the parent-edge id.
    pub to_parent_edge: Vec<EdgeId>,
}

impl InducedSubgraph {
    /// Maps a subgraph node back to the parent graph.
    pub fn parent_node(&self, node: NodeId) -> NodeId {
        self.to_parent_node[node.index()]
    }

    /// Maps a subgraph edge back to the parent graph.
    pub fn parent_edge(&self, edge: EdgeId) -> EdgeId {
        self.to_parent_edge[edge.index()]
    }

    /// Maps a parent node into the subgraph, if it was kept.
    pub fn child_node(&self, parent: NodeId) -> Option<NodeId> {
        self.from_parent_node.get(parent.index()).copied().flatten()
    }
}

/// Extracts the subgraph induced by `nodes` (duplicates ignored).
///
/// Edges of the parent with both endpoints kept are preserved with their
/// weights.
///
/// # Panics
///
/// Panics if any node id is out of range for `parent`.
///
/// # Examples
///
/// ```
/// use spanner_graph::{subgraph, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// let ind = subgraph::induced(&g, [NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
/// assert_eq!(ind.graph.node_count(), 3);
/// assert_eq!(ind.graph.edge_count(), 2); // 0-1 and 1-2 survive
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn induced<I>(parent: &Graph, nodes: I) -> InducedSubgraph
where
    I: IntoIterator<Item = NodeId>,
{
    let mut from_parent_node: Vec<Option<NodeId>> = vec![None; parent.node_count()];
    let mut to_parent_node: Vec<NodeId> = Vec::new();
    for node in nodes {
        assert!(node.index() < parent.node_count(), "node out of range");
        if from_parent_node[node.index()].is_none() {
            from_parent_node[node.index()] = Some(NodeId::new(to_parent_node.len()));
            to_parent_node.push(node);
        }
    }
    let mut graph = Graph::new(to_parent_node.len());
    let mut to_parent_edge = Vec::new();
    for (eid, edge) in parent.edges() {
        if let (Some(nu), Some(nv)) = (
            from_parent_node[edge.u().index()],
            from_parent_node[edge.v().index()],
        ) {
            graph.add_edge_unchecked(nu, nv, edge.weight());
            to_parent_edge.push(eid);
        }
    }
    InducedSubgraph {
        graph,
        to_parent_node,
        from_parent_node,
        to_parent_edge,
    }
}

/// A same-node-set subgraph keeping only a subset of edges.
#[derive(Clone, Debug)]
pub struct EdgeSubgraph {
    /// The extracted graph (same node ids as the parent).
    pub graph: Graph,
    /// `to_parent_edge[new_edge.index()]` is the parent-edge id.
    pub to_parent_edge: Vec<EdgeId>,
}

impl EdgeSubgraph {
    /// Maps a subgraph edge back to the parent graph.
    pub fn parent_edge(&self, edge: EdgeId) -> EdgeId {
        self.to_parent_edge[edge.index()]
    }
}

/// Keeps only the listed edges (node set unchanged). Duplicate ids are
/// ignored; order is normalized to increasing parent edge id so the result
/// is deterministic regardless of input order.
///
/// # Panics
///
/// Panics if any edge id is out of range for `parent`.
///
/// # Examples
///
/// ```
/// use spanner_graph::{subgraph, EdgeId, Graph};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// let sub = subgraph::edge_subgraph(&g, [EdgeId::new(2), EdgeId::new(0)]);
/// assert_eq!(sub.graph.edge_count(), 2);
/// assert_eq!(sub.parent_edge(EdgeId::new(0)), EdgeId::new(0));
/// assert_eq!(sub.parent_edge(EdgeId::new(1)), EdgeId::new(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn edge_subgraph<I>(parent: &Graph, edges: I) -> EdgeSubgraph
where
    I: IntoIterator<Item = EdgeId>,
{
    let mut keep: Vec<EdgeId> = edges.into_iter().collect();
    keep.sort();
    keep.dedup();
    let mut graph = Graph::with_edge_capacity(parent.node_count(), keep.len());
    let mut to_parent_edge = Vec::with_capacity(keep.len());
    for eid in keep {
        assert!(eid.index() < parent.edge_count(), "edge out of range");
        let e = parent.edge(eid);
        graph.add_edge_unchecked(e.u(), e.v(), e.weight());
        to_parent_edge.push(eid);
    }
    EdgeSubgraph {
        graph,
        to_parent_edge,
    }
}

/// Removes the listed edges, keeping everything else (complement of
/// [`edge_subgraph`]).
pub fn without_edges<I>(parent: &Graph, edges: I) -> EdgeSubgraph
where
    I: IntoIterator<Item = EdgeId>,
{
    let mut drop = vec![false; parent.edge_count()];
    for e in edges {
        assert!(e.index() < parent.edge_count(), "edge out of range");
        drop[e.index()] = true;
    }
    edge_subgraph(parent, parent.edge_ids().filter(|e| !drop[e.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Weight;

    fn square_with_diagonal() -> Graph {
        Graph::from_weighted_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)])
            .unwrap()
    }

    #[test]
    fn induced_preserves_weights() {
        let g = square_with_diagonal();
        let ind = induced(&g, [NodeId::new(0), NodeId::new(2), NodeId::new(1)]);
        assert_eq!(ind.graph.node_count(), 3);
        // Edges among {0,1,2}: (0,1,1), (1,2,2), (0,2,5).
        assert_eq!(ind.graph.edge_count(), 3);
        let total: u64 = ind.graph.edges().map(|(_, e)| e.weight().get()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn induced_id_round_trip() {
        let g = square_with_diagonal();
        let kept = [NodeId::new(3), NodeId::new(1)];
        let ind = induced(&g, kept);
        for new in ind.graph.nodes() {
            let old = ind.parent_node(new);
            assert_eq!(ind.child_node(old), Some(new));
        }
        assert_eq!(ind.child_node(NodeId::new(0)), None);
        // No edge between 1 and 3 in the parent.
        assert_eq!(ind.graph.edge_count(), 0);
    }

    #[test]
    fn induced_ignores_duplicates() {
        let g = square_with_diagonal();
        let ind = induced(&g, [NodeId::new(0), NodeId::new(0), NodeId::new(1)]);
        assert_eq!(ind.graph.node_count(), 2);
    }

    #[test]
    fn edge_subgraph_maps_back() {
        let g = square_with_diagonal();
        let sub = edge_subgraph(&g, [EdgeId::new(4), EdgeId::new(1)]);
        assert_eq!(sub.graph.node_count(), 4);
        assert_eq!(sub.graph.edge_count(), 2);
        assert_eq!(sub.parent_edge(EdgeId::new(0)), EdgeId::new(1));
        assert_eq!(sub.parent_edge(EdgeId::new(1)), EdgeId::new(4));
        assert_eq!(sub.graph.weight(EdgeId::new(1)), Weight::new(5).unwrap());
    }

    #[test]
    fn without_edges_complements() {
        let g = square_with_diagonal();
        let sub = without_edges(&g, [EdgeId::new(0)]);
        assert_eq!(sub.graph.edge_count(), g.edge_count() - 1);
        assert!(sub.to_parent_edge.iter().all(|e| *e != EdgeId::new(0)));
    }

    #[test]
    fn empty_selections() {
        let g = square_with_diagonal();
        let ind = induced(&g, []);
        assert_eq!(ind.graph.node_count(), 0);
        let sub = edge_subgraph(&g, []);
        assert_eq!(sub.graph.edge_count(), 0);
        assert_eq!(sub.graph.node_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn induced_checks_range() {
        let g = square_with_diagonal();
        let _ = induced(&g, [NodeId::new(17)]);
    }
}
