//! Graph serialization: text edge lists and versioned binary containers.
//!
//! Two formats with two audiences live here:
//!
//! * **This module** — the plain-text edge list: how experiment
//!   artifacts are dumped for external plotting and how test fixtures
//!   are checked in. One record per line, `#` comments allowed:
//!
//!   ```text
//!   # nodes <n>
//!   nodes 7
//!   0 1 5      # u v weight
//!   1 2        # weight omitted = 1
//!   ```
//!
//! * **[`binary`]** — the versioned binary container (magic bytes,
//!   format version, length-prefixed sections, trailing checksum) that
//!   frozen serving artifacts persist through: the [`FrozenCsr`]
//!   codec here, and `spanner_core`'s `FrozenSpanner::encode`/`decode`
//!   built on the same primitives. Byte-level spec in
//!   `docs/ARTIFACT_FORMAT.md`.
//!
//! Both decoders share the same safety contract: malformed input — a
//! typo'd fixture or a truncated/corrupt/hostile artifact — returns a
//! typed error ([`ParseGraphError`] / [`binary::BinaryError`]), never a
//! panic.
//!
//! [`FrozenCsr`]: crate::FrozenCsr

pub mod binary;

use crate::{Graph, GraphError, NodeId, Weight};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Errors from parsing the edge-list format.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseGraphError {
    /// A line could not be tokenized into `u v [w]`.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The edge list violated graph invariants (range/loops/duplicates).
    Graph(GraphError),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseGraphError::Graph(e) => write!(f, "invalid edge list: {e}"),
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseGraphError::Graph(e) => Some(e),
            ParseGraphError::Syntax { .. } => None,
        }
    }
}

impl From<GraphError> for ParseGraphError {
    fn from(e: GraphError) -> Self {
        ParseGraphError::Graph(e)
    }
}

/// Serializes `graph` in the edge-list format (weights omitted when 1).
///
/// # Examples
///
/// ```
/// use spanner_graph::{io, Graph};
///
/// let g = Graph::from_weighted_edges(3, [(0, 1, 1), (1, 2, 5)])?;
/// let text = io::to_edge_list(&g);
/// let back = io::from_edge_list(&text)?;
/// assert_eq!(back.edge_count(), 2);
/// assert_eq!(back.weight(spanner_graph::EdgeId::new(1)).get(), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("nodes {}\n", graph.node_count()));
    for (_, e) in graph.edges() {
        if e.weight() == Weight::UNIT {
            out.push_str(&format!("{} {}\n", e.u().index(), e.v().index()));
        } else {
            out.push_str(&format!(
                "{} {} {}\n",
                e.u().index(),
                e.v().index(),
                e.weight().get()
            ));
        }
    }
    out
}

/// Parses the edge-list format back into a graph.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed lines, missing/duplicate
/// `nodes` headers, or structural violations (self-loops, duplicates,
/// out-of-range endpoints, zero weights).
pub fn from_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    let mut graph: Option<Graph> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let first = tokens.next().expect("non-empty line has a token");
        if first == "nodes" {
            if graph.is_some() {
                return Err(ParseGraphError::Syntax {
                    line: line_no,
                    message: "duplicate nodes header".to_string(),
                });
            }
            let n = parse_token::<usize>(tokens.next(), "node count", line_no)?;
            graph = Some(Graph::new(n));
            continue;
        }
        let g = graph.as_mut().ok_or(ParseGraphError::Syntax {
            line: line_no,
            message: "edge before nodes header".to_string(),
        })?;
        let u = first
            .parse::<usize>()
            .map_err(|_| ParseGraphError::Syntax {
                line: line_no,
                message: format!("bad vertex id {first:?}"),
            })?;
        let v = parse_token::<usize>(tokens.next(), "second endpoint", line_no)?;
        let w = match tokens.next() {
            None => 1u64,
            Some(tok) => tok.parse::<u64>().map_err(|_| ParseGraphError::Syntax {
                line: line_no,
                message: format!("bad weight {tok:?}"),
            })?,
        };
        if tokens.next().is_some() {
            return Err(ParseGraphError::Syntax {
                line: line_no,
                message: "trailing tokens".to_string(),
            });
        }
        let weight = Weight::new(w).ok_or(ParseGraphError::Syntax {
            line: line_no,
            message: "zero weight".to_string(),
        })?;
        g.try_add_edge(NodeId::new(u), NodeId::new(v), weight)?;
    }
    graph.ok_or(ParseGraphError::Syntax {
        line: 0,
        message: "missing nodes header".to_string(),
    })
}

fn parse_token<T: FromStr>(
    token: Option<&str>,
    what: &str,
    line: usize,
) -> Result<T, ParseGraphError> {
    let tok = token.ok_or_else(|| ParseGraphError::Syntax {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse::<T>().map_err(|_| ParseGraphError::Syntax {
        line,
        message: format!("bad {what} {tok:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_weighted() {
        let g = Graph::from_weighted_edges(5, [(0, 1, 3), (1, 2, 1), (3, 4, 9)]).unwrap();
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(back.node_count(), 5);
        assert_eq!(back.edge_count(), 3);
        for (id, e) in g.edges() {
            let (u, v) = back.endpoints(id);
            assert_eq!((u, v), (e.u(), e.v()));
            assert_eq!(back.weight(id), e.weight());
        }
    }

    #[test]
    fn round_trip_generated() {
        let g = generators::petersen();
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(back.edge_count(), 15);
        assert_eq!(back.node_count(), 10);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# a comment\nnodes 3\n0 1 # inline comment\n\n1 2 4\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.weight(crate::EdgeId::new(1)).get(), 4);
    }

    #[test]
    fn missing_header_rejected() {
        let err = from_edge_list("0 1\n").unwrap_err();
        assert!(err.to_string().contains("before nodes header"));
        let err = from_edge_list("# nothing\n").unwrap_err();
        assert!(err.to_string().contains("missing nodes header"));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(from_edge_list("nodes x\n").is_err());
        assert!(from_edge_list("nodes 3\n0\n").is_err());
        assert!(from_edge_list("nodes 3\n0 1 2 3\n").is_err());
        assert!(from_edge_list("nodes 3\n0 one\n").is_err());
        assert!(from_edge_list("nodes 3\n0 1 0\n").is_err(), "zero weight");
        assert!(from_edge_list("nodes 3\nnodes 3\n").is_err(), "dup header");
    }

    #[test]
    fn structural_violations_rejected() {
        let err = from_edge_list("nodes 2\n0 0\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::Graph(_)));
        assert!(err.source().is_some());
        assert!(from_edge_list("nodes 2\n0 5\n").is_err());
        assert!(from_edge_list("nodes 2\n0 1\n1 0\n").is_err());
    }
}
