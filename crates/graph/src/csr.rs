//! A frozen compressed-sparse-row graph view.
//!
//! [`Graph`] optimizes for growth (FT-greedy appends edges constantly);
//! its `Vec<Vec<…>>` adjacency pays a pointer chase per vertex. Once a
//! graph stops changing — verification sweeps, routing services, repeated
//! audits — a CSR layout with all neighbors in one contiguous array is
//! friendlier to the cache. [`CsrGraph`] is that view: immutable, same
//! vertex/edge ids, with its own fault-masked bounded Dijkstra.
//!
//! The `substrate` bench compares the two layouts on identical query
//! workloads.

use crate::{Dist, EdgeId, FaultMask, Graph, IndexedHeap, NodeId, Weight};

/// An immutable CSR snapshot of a [`Graph`] (same node and edge ids).
///
/// # Examples
///
/// ```
/// use spanner_graph::{csr::CsrGraph, generators, Dist, FaultMask, NodeId};
///
/// let g = generators::complete(8);
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(csr.node_count(), 8);
/// assert_eq!(csr.edge_count(), 28);
/// let mask = FaultMask::for_graph(&g);
/// let d = csr.dist_bounded(NodeId::new(0), NodeId::new(5), Dist::finite(3), &mask);
/// assert_eq!(d, Some(Dist::finite(1)));
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    via_edges: Vec<u32>,
    weights: Vec<Weight>,
    edge_count: usize,
}

impl CsrGraph {
    /// Snapshots `graph` into CSR form.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        let mut via_edges = Vec::with_capacity(2 * graph.edge_count());
        let mut weights = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for v in graph.nodes() {
            for (to, eid) in graph.neighbors(v) {
                targets.push(to.raw());
                via_edges.push(eid.raw());
                weights.push(graph.weight(eid));
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            via_edges,
            weights,
            edge_count: graph.edge_count(),
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates over `(neighbor, edge, weight)` triples of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(
        &self,
        node: NodeId,
    ) -> impl ExactSizeIterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        (lo..hi).map(move |i| {
            (
                NodeId::from(self.targets[i]),
                EdgeId::from(self.via_edges[i]),
                self.weights[i],
            )
        })
    }

    /// Bounded fault-masked Dijkstra distance (same contract as
    /// [`crate::DijkstraEngine::dist_bounded`]).
    pub fn dist_bounded(
        &self,
        src: NodeId,
        dst: NodeId,
        bound: Dist,
        mask: &FaultMask,
    ) -> Option<Dist> {
        if mask.is_vertex_faulted(src) || mask.is_vertex_faulted(dst) {
            return None;
        }
        let n = self.node_count();
        let mut dist = vec![Dist::INFINITE; n];
        let mut heap = IndexedHeap::new(n);
        dist[src.index()] = Dist::ZERO;
        heap.push_or_decrease(src.index(), 0u64);
        while let Some((v, dv)) = heap.pop() {
            let dv = Dist::finite(dv);
            if v == dst.index() {
                return (dv <= bound).then_some(dv);
            }
            if dv > bound {
                return None;
            }
            for (to, eid, w) in self.neighbors(NodeId::new(v)) {
                if !mask.allows(to, eid) {
                    continue;
                }
                let cand = dv + w;
                if cand <= bound && cand < dist[to.index()] {
                    dist[to.index()] = cand;
                    heap.push_or_decrease(to.index(), cand.value().expect("finite"));
                }
            }
        }
        None
    }

    /// Fault-masked single-source distances (unbounded).
    pub fn sssp(&self, src: NodeId, mask: &FaultMask) -> Vec<Dist> {
        let n = self.node_count();
        let mut dist = vec![Dist::INFINITE; n];
        if mask.is_vertex_faulted(src) {
            return dist;
        }
        let mut heap = IndexedHeap::new(n);
        dist[src.index()] = Dist::ZERO;
        heap.push_or_decrease(src.index(), 0u64);
        while let Some((v, dv)) = heap.pop() {
            let dv = Dist::finite(dv);
            for (to, eid, w) in self.neighbors(NodeId::new(v)) {
                if !mask.allows(to, eid) {
                    continue;
                }
                let cand = dv + w;
                if cand < dist[to.index()] {
                    dist[to.index()] = cand;
                    heap.push_or_decrease(to.index(), cand.value().expect("finite"));
                }
            }
        }
        dist
    }
}

impl From<&Graph> for CsrGraph {
    fn from(graph: &Graph) -> Self {
        CsrGraph::from_graph(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structure_matches_source() {
        let g = generators::petersen();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v));
            let from_graph: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            let from_csr: Vec<(NodeId, EdgeId)> =
                csr.neighbors(v).map(|(n, e, _)| (n, e)).collect();
            assert_eq!(from_graph, from_csr);
        }
    }

    #[test]
    fn sssp_matches_engine_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..10 {
            let g = generators::erdos_renyi(40, 0.15, &mut rng);
            let csr = CsrGraph::from_graph(&g);
            let mask = FaultMask::for_graph(&g);
            let mut engine = dijkstra::DijkstraEngine::new();
            for s in [0usize, 7, 20] {
                assert_eq!(
                    csr.sssp(NodeId::new(s), &mask),
                    engine.sssp(&g, NodeId::new(s), &mask)
                );
            }
        }
    }

    #[test]
    fn bounded_queries_match_under_faults() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = generators::erdos_renyi(30, 0.2, &mut rng);
        let csr = CsrGraph::from_graph(&g);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(3));
        if g.edge_count() > 0 {
            mask.fault_edge(EdgeId::new(0));
        }
        let mut engine = dijkstra::DijkstraEngine::new();
        for bound in [1u64, 2, 4, 50] {
            for (u, v) in [(0usize, 1usize), (2, 29), (5, 17)] {
                assert_eq!(
                    csr.dist_bounded(NodeId::new(u), NodeId::new(v), Dist::finite(bound), &mask),
                    engine.dist_bounded(
                        &g,
                        NodeId::new(u),
                        NodeId::new(v),
                        Dist::finite(bound),
                        &mask
                    ),
                    "bound {bound} pair ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn weighted_distances_preserved() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 5), (1, 2, 2), (0, 3, 1), (3, 2, 3)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let mask = FaultMask::for_graph(&g);
        let d = csr.sssp(NodeId::new(0), &mask);
        assert_eq!(d[2], Dist::finite(4)); // 0-3-2
        assert_eq!(d[1], Dist::finite(5));
    }

    #[test]
    fn from_ref_conversion() {
        let g = generators::cycle(5);
        let csr: CsrGraph = (&g).into();
        assert_eq!(csr.edge_count(), 5);
    }
}
