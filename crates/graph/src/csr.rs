//! Compressed-sparse-row graph views, frozen and incremental.
//!
//! [`Graph`] optimizes for growth (FT-greedy appends edges constantly);
//! its `Vec<Vec<…>>` adjacency pays a pointer chase per vertex. Once a
//! graph stops changing — verification sweeps, routing services, repeated
//! audits — a CSR layout with all neighbors in one contiguous array is
//! friendlier to the cache. [`CsrGraph`] is that view: immutable, same
//! vertex/edge ids, with its own fault-masked bounded Dijkstra.
//!
//! [`IncrementalCsr`] covers the in-between case that dominates spanner
//! construction: a graph that *grows* (one kept edge at a time) but is
//! *queried* thousands of times between appends. It keeps a frozen CSR
//! snapshot plus a small append buffer, folding the buffer back into the
//! snapshot once it exceeds a fixed threshold, so queries stay within a
//! few dozen extra scans of flat memory and appends stay amortized O(1).
//!
//! [`FrozenCsr`] is the end state of that life cycle: a construction has
//! finished, the graph will never change again, and from now on it is
//! only *served* — shared across query threads behind an `Arc`. Unlike
//! [`CsrGraph`] it implements [`GraphView`] (so the generic
//! [`DijkstraEngine`](crate::DijkstraEngine) runs over it unchanged, with
//! identical tie-breaks), packs each adjacency slot's `(target, via-edge,
//! weight)` into one contiguous record (one cache line touch per
//! neighbor instead of three parallel-array touches), and is immutable by
//! construction, hence trivially `Send + Sync`.
//!
//! The `substrate` bench compares the layouts on identical query
//! workloads.

use crate::adjacency::GraphView;
use crate::bytes::{read_u32_at, read_u64_at, SharedBytes, BUFFER_ALIGN};
use crate::io::binary::{self, BinaryError};
use crate::{Dist, EdgeId, FaultMask, Graph, IndexedHeap, NodeId, Weight};

/// An immutable CSR snapshot of a [`Graph`] (same node and edge ids).
///
/// # Examples
///
/// ```
/// use spanner_graph::{csr::CsrGraph, generators, Dist, FaultMask, NodeId};
///
/// let g = generators::complete(8);
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(csr.node_count(), 8);
/// assert_eq!(csr.edge_count(), 28);
/// let mask = FaultMask::for_graph(&g);
/// let d = csr.dist_bounded(NodeId::new(0), NodeId::new(5), Dist::finite(3), &mask);
/// assert_eq!(d, Some(Dist::finite(1)));
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    via_edges: Vec<u32>,
    weights: Vec<Weight>,
    edge_count: usize,
}

impl CsrGraph {
    /// Snapshots `graph` into CSR form.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        let mut via_edges = Vec::with_capacity(2 * graph.edge_count());
        let mut weights = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for v in graph.nodes() {
            for (to, eid) in graph.neighbors(v) {
                targets.push(to.raw());
                via_edges.push(eid.raw());
                weights.push(graph.weight(eid));
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            via_edges,
            weights,
            edge_count: graph.edge_count(),
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates over `(neighbor, edge, weight)` triples of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(
        &self,
        node: NodeId,
    ) -> impl ExactSizeIterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        (lo..hi).map(move |i| {
            (
                NodeId::from(self.targets[i]),
                EdgeId::from(self.via_edges[i]),
                self.weights[i],
            )
        })
    }

    /// Bounded fault-masked Dijkstra distance (same contract as
    /// [`crate::DijkstraEngine::dist_bounded`]).
    pub fn dist_bounded(
        &self,
        src: NodeId,
        dst: NodeId,
        bound: Dist,
        mask: &FaultMask,
    ) -> Option<Dist> {
        if mask.is_vertex_faulted(src) || mask.is_vertex_faulted(dst) {
            return None;
        }
        let n = self.node_count();
        let mut dist = vec![Dist::INFINITE; n];
        let mut heap = IndexedHeap::new(n);
        dist[src.index()] = Dist::ZERO;
        heap.push_or_decrease(src.index(), 0u64);
        while let Some((v, dv)) = heap.pop() {
            let dv = Dist::finite(dv);
            if v == dst.index() {
                return (dv <= bound).then_some(dv);
            }
            if dv > bound {
                return None;
            }
            for (to, eid, w) in self.neighbors(NodeId::new(v)) {
                if !mask.allows(to, eid) {
                    continue;
                }
                let cand = dv + w;
                if cand <= bound && cand < dist[to.index()] {
                    dist[to.index()] = cand;
                    heap.push_or_decrease(to.index(), cand.value().expect("finite"));
                }
            }
        }
        None
    }

    /// Fault-masked single-source distances (unbounded).
    pub fn sssp(&self, src: NodeId, mask: &FaultMask) -> Vec<Dist> {
        let n = self.node_count();
        let mut dist = vec![Dist::INFINITE; n];
        if mask.is_vertex_faulted(src) {
            return dist;
        }
        let mut heap = IndexedHeap::new(n);
        dist[src.index()] = Dist::ZERO;
        heap.push_or_decrease(src.index(), 0u64);
        while let Some((v, dv)) = heap.pop() {
            let dv = Dist::finite(dv);
            for (to, eid, w) in self.neighbors(NodeId::new(v)) {
                if !mask.allows(to, eid) {
                    continue;
                }
                let cand = dv + w;
                if cand < dist[to.index()] {
                    dist[to.index()] = cand;
                    heap.push_or_decrease(to.index(), cand.value().expect("finite"));
                }
            }
        }
        dist
    }
}

impl From<&Graph> for CsrGraph {
    fn from(graph: &Graph) -> Self {
        CsrGraph::from_graph(graph)
    }
}

/// How many appended edges [`IncrementalCsr`] tolerates before folding
/// them back into the frozen CSR arrays. Traversals scan the whole append
/// buffer once per visited vertex, so the buffer is kept small; rebuilds
/// reuse the existing allocations and cost O(n + m).
const PENDING_REBUILD_LIMIT: usize = 32;

/// A growable CSR view: a frozen snapshot plus a bounded append buffer.
///
/// Node and edge ids match the [`Graph`] the view mirrors (edges get dense
/// ids in append order). [`IncrementalCsr::push_edge`] is amortized O(1);
/// neighbor iteration touches the frozen contiguous slice for the vertex
/// plus at most `PENDING_REBUILD_LIMIT` buffered entries. This is the
/// structure the FT-greedy oracle hot loop runs its Dijkstras over.
///
/// Neighbor order follows the [`GraphView`] determinism contract
/// (increasing edge id), so traversals over the view tie-break exactly
/// like traversals over the mirrored [`Graph`].
///
/// # Examples
///
/// ```
/// use spanner_graph::{GraphView, IncrementalCsr, NodeId, Weight};
///
/// let mut view = IncrementalCsr::new(3);
/// view.push_edge(NodeId::new(0), NodeId::new(1), Weight::UNIT);
/// view.push_edge(NodeId::new(1), NodeId::new(2), Weight::UNIT);
/// assert_eq!(view.edge_count(), 2);
/// let mut around_one = Vec::new();
/// view.for_each_neighbor(NodeId::new(1), |to, _, _| around_one.push(to.index()));
/// assert_eq!(around_one, vec![0, 2]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IncrementalCsr {
    node_count: usize,
    /// Frozen CSR arrays covering edge ids `0..frozen`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    via_edges: Vec<u32>,
    csr_weights: Vec<Weight>,
    frozen: usize,
    /// Per-edge stores covering *all* edges (frozen and pending alike).
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    edge_w: Vec<Weight>,
    /// Rebuild counter (exposed for the scratch-reuse regression tests).
    rebuilds: u64,
    /// Reused cursor array for counting-sort rebuilds.
    cursor: Vec<u32>,
}

impl IncrementalCsr {
    /// Creates an empty view over `node_count` isolated vertices.
    pub fn new(node_count: usize) -> Self {
        IncrementalCsr {
            node_count,
            offsets: vec![0; node_count + 1],
            ..IncrementalCsr::default()
        }
    }

    /// Builds a view mirroring `graph` (same node and edge ids), fully
    /// frozen into CSR form.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut view = IncrementalCsr::new(graph.node_count());
        view.sync_from_graph(graph);
        view
    }

    /// Resets to `node_count` isolated vertices, keeping allocations.
    pub fn reset(&mut self, node_count: usize) {
        self.node_count = node_count;
        self.offsets.clear();
        self.offsets.resize(node_count + 1, 0);
        self.targets.clear();
        self.via_edges.clear();
        self.csr_weights.clear();
        self.frozen = 0;
        self.edge_u.clear();
        self.edge_v.clear();
        self.edge_w.clear();
    }

    /// Re-mirrors `graph` from scratch (reusing allocations) and freezes
    /// the whole edge set into CSR form. Used by oracles that accept an
    /// arbitrary [`Graph`] per query and must resynchronize their view.
    pub fn sync_from_graph(&mut self, graph: &Graph) {
        self.reset(graph.node_count());
        for (_, e) in graph.edges() {
            self.edge_u.push(e.u().raw());
            self.edge_v.push(e.v().raw());
            self.edge_w.push(e.weight());
        }
        if !self.edge_u.is_empty() {
            self.rebuild();
        }
    }

    /// Appends an edge, returning its dense id. Amortized O(1): every
    /// `PENDING_REBUILD_LIMIT` appends trigger an O(n + m) fold of the
    /// append buffer into the frozen arrays.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`. Duplicates are
    /// not detected (mirroring [`Graph::add_edge_unchecked`]).
    pub fn push_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        assert!(
            u.index() < self.node_count && v.index() < self.node_count,
            "edge endpoint out of range"
        );
        assert!(u != v, "self-loop at {u}");
        let id = EdgeId::new(self.edge_u.len());
        self.edge_u.push(u.raw());
        self.edge_v.push(v.raw());
        self.edge_w.push(weight);
        if self.edge_u.len() - self.frozen > PENDING_REBUILD_LIMIT {
            self.rebuild();
        }
        id
    }

    /// Folds the append buffer into the frozen CSR arrays (counting sort
    /// by endpoint, filling in edge-id order so per-node neighbor lists
    /// stay sorted by edge id). Reuses all allocations.
    fn rebuild(&mut self) {
        self.rebuilds += 1;
        let n = self.node_count;
        let m = self.edge_u.len();
        self.cursor.clear();
        self.cursor.resize(n, 0);
        for i in 0..m {
            self.cursor[self.edge_u[i] as usize] += 1;
            self.cursor[self.edge_v[i] as usize] += 1;
        }
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0);
        let mut running = 0u32;
        for v in 0..n {
            running += self.cursor[v];
            self.offsets.push(running);
        }
        self.targets.clear();
        self.targets.resize(2 * m, 0);
        self.via_edges.clear();
        self.via_edges.resize(2 * m, 0);
        self.csr_weights.clear();
        self.csr_weights.resize(2 * m, Weight::UNIT);
        // Reuse `cursor` as per-node write positions.
        self.cursor.copy_from_slice(&self.offsets[..n]);
        for i in 0..m {
            let (u, v, w) = (self.edge_u[i], self.edge_v[i], self.edge_w[i]);
            let pu = self.cursor[u as usize] as usize;
            self.targets[pu] = v;
            self.via_edges[pu] = i as u32;
            self.csr_weights[pu] = w;
            self.cursor[u as usize] += 1;
            let pv = self.cursor[v as usize] as usize;
            self.targets[pv] = u;
            self.via_edges[pv] = i as u32;
            self.csr_weights[pv] = w;
            self.cursor[v as usize] += 1;
        }
        self.frozen = m;
    }

    /// Number of buffer folds performed so far (a reuse diagnostic: after
    /// warm-up the count advances once per `PENDING_REBUILD_LIMIT`
    /// appends, never per query).
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Number of edges still in the append buffer (bounded by
    /// `PENDING_REBUILD_LIMIT`).
    pub fn pending_len(&self) -> usize {
        self.edge_u.len() - self.frozen
    }

    /// Finalizes this view into an immutable [`FrozenCsr`] (folding any
    /// pending appends into the packed layout). The view itself is left
    /// untouched; freezing is the hand-off point from construction to
    /// serving.
    pub fn freeze(&self) -> FrozenCsr {
        FrozenCsr::from_view(self)
    }
}

impl GraphView for IncrementalCsr {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_u.len()
    }

    #[inline]
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        (
            NodeId::from(self.edge_u[edge.index()]),
            NodeId::from(self.edge_v[edge.index()]),
        )
    }

    #[inline]
    fn edge_weight(&self, edge: EdgeId) -> Weight {
        self.edge_w[edge.index()]
    }

    #[inline]
    fn for_each_neighbor(&self, node: NodeId, mut f: impl FnMut(NodeId, EdgeId, Weight)) {
        let i = node.index();
        assert!(i < self.node_count, "node out of range");
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        for p in lo..hi {
            f(
                NodeId::from(self.targets[p]),
                EdgeId::from(self.via_edges[p]),
                self.csr_weights[p],
            );
        }
        let node = node.raw();
        for e in self.frozen..self.edge_u.len() {
            if self.edge_u[e] == node {
                f(NodeId::from(self.edge_v[e]), EdgeId::new(e), self.edge_w[e]);
            } else if self.edge_v[e] == node {
                f(NodeId::from(self.edge_u[e]), EdgeId::new(e), self.edge_w[e]);
            }
        }
    }

    fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        assert!(
            u.index() < self.node_count && v.index() < self.node_count,
            "node out of range"
        );
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        for p in lo..hi {
            if self.targets[p] == v.raw() {
                return Some(EdgeId::from(self.via_edges[p]));
            }
        }
        for e in self.frozen..self.edge_u.len() {
            if (self.edge_u[e] == u.raw() && self.edge_v[e] == v.raw())
                || (self.edge_u[e] == v.raw() && self.edge_v[e] == u.raw())
            {
                return Some(EdgeId::new(e));
            }
        }
        None
    }
}

impl From<&Graph> for IncrementalCsr {
    fn from(graph: &Graph) -> Self {
        IncrementalCsr::from_graph(graph)
    }
}

/// One packed adjacency slot of a [`FrozenCsr`]: the neighbor, the edge
/// crossed to reach it, and that edge's weight, side by side so a
/// traversal touches one record instead of three parallel arrays.
#[derive(Clone, Copy, Debug)]
struct PackedAdj {
    to: u32,
    via: u32,
    weight: Weight,
}

/// Byte width of the v2 CSR payload header (`node_count u64,
/// edge_count u64`).
pub const CSR_PAYLOAD_HEADER_LEN: usize = 16;

/// Byte width of one packed adjacency record in the v2 CSR payload
/// (`to u32, via u32, weight u64`).
pub const CSR_ADJ_RECORD_LEN: usize = 16;

/// Byte width of one edge record in the v2 CSR payload
/// (`u u32, v u32, weight u64`).
pub const CSR_EDGE_RECORD_LEN: usize = 16;

// Compile-time layout asserts: the on-disk record widths the in-place
// reader and the writer both assume, pinned against the field widths
// they are built from. `PackedAdj` (the owned layout) mirrors the
// packed on-disk record byte for byte in width, which is what makes the
// owned and borrowed storages interchangeable cache-wise.
const _: () = assert!(CSR_PAYLOAD_HEADER_LEN == 8 + 8);
const _: () = assert!(CSR_ADJ_RECORD_LEN == 4 + 4 + 8);
const _: () = assert!(CSR_EDGE_RECORD_LEN == 4 + 4 + 8);
const _: () = assert!(std::mem::size_of::<PackedAdj>() == CSR_ADJ_RECORD_LEN);
const _: () = assert!(std::mem::size_of::<u32>() == 4 && std::mem::size_of::<u64>() == 8);

/// The storage a [`FrozenCsr`] serves from: either owned `Vec`s built
/// by a freeze, or borrowed slices of a shared byte buffer validated by
/// [`FrozenCsr::from_bytes`] — the zero-copy open path.
///
/// Every [`GraphView`] method on [`FrozenCsr`] dispatches over this
/// enum, so `DijkstraEngine` and every other view consumer runs
/// unchanged (and tie-breaks identically) over both representations.
#[derive(Clone, Debug)]
pub enum CsrStorage {
    /// Heap-owned arrays (the result of [`FrozenCsr::from_view`] or
    /// [`FrozenCsr::materialize`]).
    Owned(OwnedCsr),
    /// Slices of a shared, aligned byte buffer read in place.
    Borrowed(ByteCsr),
}

/// Owned CSR arrays (the classic freeze output).
#[derive(Clone, Debug)]
pub struct OwnedCsr {
    node_count: usize,
    offsets: Vec<u32>,
    adj: Vec<PackedAdj>,
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    edge_w: Vec<Weight>,
}

/// A validated in-place view over a v2 CSR payload inside a shared
/// byte buffer. Holding a clone of the buffer keeps the bytes alive;
/// all reads decode fixed-width little-endian fields at offsets the
/// validator proved in bounds.
#[derive(Clone, Debug)]
pub struct ByteCsr {
    bytes: SharedBytes,
    node_count: usize,
    edge_count: usize,
    /// Absolute section range inside `bytes` (for canonical re-encode).
    start: usize,
    len: usize,
    /// Absolute offsets of the three packed tables inside `bytes`.
    offsets_at: usize,
    adj_at: usize,
    edges_at: usize,
}

impl ByteCsr {
    #[inline]
    fn data(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// The raw section bytes this view was validated over.
    fn section(&self) -> &[u8] {
        &self.data()[self.start..self.start + self.len]
    }

    #[inline]
    fn offset(&self, data: &[u8], i: usize) -> usize {
        read_u32_at(data, self.offsets_at + 4 * i) as usize
    }

    /// Validates a v2 CSR payload at `bytes[start..start + len]` and
    /// returns an in-place view over it.
    ///
    /// The checks, in order: 8-byte alignment of the payload's actual
    /// address ([`BinaryError::MisalignedSection`]), header presence,
    /// node/edge counts bounded by the bytes present (the same
    /// proportionality guard as the v1 decoder, so a hostile header
    /// cannot size an allocation), exact payload length for the claimed
    /// counts, zero padding, offset monotonicity, per-slot agreement of
    /// the adjacency table with its canonical derivation from the edge
    /// list (so a crafted adjacency cannot smuggle in edges the edge
    /// list does not carry), simple-graph invariants (no self-loops, no
    /// duplicate edges, positive weights). O(n + m) time, O(n) scratch,
    /// and no allocation sized by unvalidated input.
    fn validate(bytes: SharedBytes, start: usize, len: usize) -> Result<ByteCsr, BinaryError> {
        let malformed =
            |context: &'static str, detail: String| BinaryError::Malformed { context, detail };
        let end =
            start
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or(BinaryError::Truncated {
                    context: "csr payload",
                })?;
        let data = bytes.as_slice();
        let addr = data.as_ptr() as usize;
        if (addr + start) % BUFFER_ALIGN != 0 {
            return Err(BinaryError::MisalignedSection {
                context: "csr payload base",
                offset: ((addr + start) % BUFFER_ALIGN) as u64,
            });
        }
        if len < CSR_PAYLOAD_HEADER_LEN {
            return Err(BinaryError::Truncated {
                context: "csr payload header",
            });
        }
        let sect = &data[start..end];
        let n_raw = read_u64_at(sect, 0);
        let m_raw = read_u64_at(sect, 8);
        let bound = binary::NODE_COUNT_FLOOR.max(len.saturating_mul(binary::NODE_BYTES_FACTOR));
        if n_raw > u32::MAX as u64 || n_raw > bound as u64 {
            return Err(malformed(
                "csr node count",
                format!(
                    "claimed {n_raw} nodes exceeds the decoder bound ({bound}) for a {len}-byte payload"
                ),
            ));
        }
        if m_raw > u32::MAX as u64 {
            return Err(malformed(
                "csr edge count",
                format!("claimed {m_raw} edges exceeds the u32 id space"),
            ));
        }
        let (n, m) = (n_raw as usize, m_raw as usize);
        let offsets_len = 4 * (n + 1);
        let adj_rel = CSR_PAYLOAD_HEADER_LEN + binary::align8(offsets_len);
        let expected = adj_rel
            .checked_add(2 * m * CSR_ADJ_RECORD_LEN)
            .and_then(|x| x.checked_add(m * CSR_EDGE_RECORD_LEN));
        if expected != Some(len) {
            return Err(malformed(
                "csr payload size",
                format!(
                    "payload is {len} bytes but {n} nodes and {m} edges require {}",
                    expected.map_or_else(|| "more than usize".to_string(), |e| e.to_string())
                ),
            ));
        }
        if sect[CSR_PAYLOAD_HEADER_LEN + offsets_len..adj_rel]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(malformed(
                "csr padding",
                "nonzero pad byte after the offset table".to_string(),
            ));
        }
        let off = |i: usize| read_u32_at(sect, CSR_PAYLOAD_HEADER_LEN + 4 * i) as usize;
        if off(0) != 0 {
            return Err(malformed(
                "csr offsets",
                format!("first offset is {}, expected 0", off(0)),
            ));
        }
        for i in 0..n {
            if off(i) > off(i + 1) {
                return Err(malformed(
                    "csr offsets",
                    format!("offset table decreases at vertex {i}"),
                ));
            }
        }
        if off(n) != 2 * m {
            return Err(malformed(
                "csr offsets",
                format!("{} adjacency slots disagree with edge count {m}", off(n)),
            ));
        }
        let edges_rel = adj_rel + 2 * m * CSR_ADJ_RECORD_LEN;
        let edge = |e: usize| {
            let at = edges_rel + e * CSR_EDGE_RECORD_LEN;
            (
                read_u32_at(sect, at) as usize,
                read_u32_at(sect, at + 4) as usize,
                read_u64_at(sect, at + 8),
            )
        };
        for e in 0..m {
            let (u, v, w) = edge(e);
            if u >= n || v >= n {
                return Err(malformed(
                    "csr edge record",
                    format!("edge {e} endpoint out of range for {n} nodes"),
                ));
            }
            if u == v {
                return Err(malformed(
                    "csr edge record",
                    format!("self-loop at vertex {u}"),
                ));
            }
            if w == 0 {
                return Err(malformed(
                    "csr edge record",
                    format!("edge {e} has zero weight"),
                ));
            }
        }
        // The adjacency table must be byte-for-byte the canonical
        // derivation from the edge list (each endpoint's slots in
        // increasing edge-id order) — the same order every freeze
        // writes and every GraphView consumer tie-breaks on.
        let mut next: Vec<u32> = (0..n).map(|a| off(a) as u32).collect();
        for e in 0..m {
            let (u, v, w) = edge(e);
            for (a, b) in [(u, v), (v, u)] {
                let slot = next[a] as usize;
                let at = adj_rel + slot * CSR_ADJ_RECORD_LEN;
                if slot >= off(a + 1)
                    || read_u32_at(sect, at) as usize != b
                    || read_u32_at(sect, at + 4) as usize != e
                    || read_u64_at(sect, at + 8) != w
                {
                    return Err(malformed(
                        "csr adjacency",
                        format!(
                            "adjacency table disagrees with its canonical derivation at vertex {a}, edge {e}"
                        ),
                    ));
                }
                next[a] += 1;
            }
        }
        // Every slot is consumed: each vertex contributed next[a] - off(a)
        // slots, the sums match off(n) == 2m, and no vertex overran, so
        // the per-vertex counts agree exactly. Duplicate edges remain:
        // they derive consistently, so detect them per vertex run.
        let mut mark = vec![u32::MAX; n];
        for a in 0..n {
            for slot in off(a)..off(a + 1) {
                let to = read_u32_at(sect, adj_rel + slot * CSR_ADJ_RECORD_LEN) as usize;
                if mark[to] == a as u32 {
                    return Err(malformed(
                        "csr adjacency",
                        format!("duplicate edge between vertices {a} and {to}"),
                    ));
                }
                mark[to] = a as u32;
            }
        }
        Ok(ByteCsr {
            bytes,
            node_count: n,
            edge_count: m,
            start,
            len,
            offsets_at: start + CSR_PAYLOAD_HEADER_LEN,
            adj_at: start + adj_rel,
            edges_at: start + edges_rel,
        })
    }
}

/// A read-only, cache-packed CSR snapshot — the serving layout.
///
/// Built once from any [`GraphView`] (a [`Graph`], an [`IncrementalCsr`]
/// via [`IncrementalCsr::freeze`], …) with the same node and edge ids and
/// the same neighbor order, so traversals over the frozen layout
/// tie-break exactly like traversals over the source. The structure is
/// immutable after construction and holds no interior mutability, so it
/// is `Send + Sync` and cheap to share across query threads behind an
/// `Arc` — this is what the freeze-and-serve read path
/// (`spanner_core`'s `FrozenSpanner`/`EpochServer`) hands to its workers.
///
/// Since the v2 artifact layout, the arrays behind a `FrozenCsr` live in
/// a [`CsrStorage`]: either owned `Vec`s, or borrowed slices of a shared
/// aligned buffer ([`FrozenCsr::from_bytes`]) so a replica can serve
/// straight off an mmap'd artifact without rebuilding anything.
///
/// # Examples
///
/// ```
/// use spanner_graph::{
///     csr::FrozenCsr, generators, DijkstraEngine, Dist, FaultMask, GraphView, NodeId,
/// };
///
/// let g = generators::complete(8);
/// let frozen = FrozenCsr::from_view(&g);
/// let mask = FaultMask::with_capacity(8, frozen.edge_count());
/// let mut engine = DijkstraEngine::new();
/// let d = engine.dist_bounded(&frozen, NodeId::new(0), NodeId::new(5), Dist::finite(3), &mask);
/// assert_eq!(d, Some(Dist::finite(1)));
/// ```
#[derive(Clone, Debug)]
pub struct FrozenCsr {
    storage: CsrStorage,
}

impl FrozenCsr {
    /// Snapshots any graph view into the packed frozen layout (same node
    /// and edge ids, same neighbor order), owned storage.
    pub fn from_view<V: GraphView>(view: &V) -> Self {
        let n = view.node_count();
        let m = view.edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(2 * m);
        offsets.push(0);
        for v in 0..n {
            view.for_each_neighbor(NodeId::new(v), |to, eid, w| {
                adj.push(PackedAdj {
                    to: to.raw(),
                    via: eid.raw(),
                    weight: w,
                });
            });
            offsets.push(adj.len() as u32);
        }
        let mut edge_u = Vec::with_capacity(m);
        let mut edge_v = Vec::with_capacity(m);
        let mut edge_w = Vec::with_capacity(m);
        for e in 0..m {
            let (u, v) = view.edge_endpoints(EdgeId::new(e));
            edge_u.push(u.raw());
            edge_v.push(v.raw());
            edge_w.push(view.edge_weight(EdgeId::new(e)));
        }
        FrozenCsr {
            storage: CsrStorage::Owned(OwnedCsr {
                node_count: n,
                offsets,
                adj,
                edge_u,
                edge_v,
                edge_w,
            }),
        }
    }

    /// Opens a v2 CSR payload **in place**: validates the section at
    /// `bytes[start..start + len]` (alignment, counts, ranges,
    /// adjacency/edge-list agreement — see the checked validator's
    /// docs) and returns a `FrozenCsr` whose storage borrows the buffer
    /// instead of rebuilding `Vec`s. O(n + m) validation scans, O(n)
    /// scratch, zero per-record materialization.
    ///
    /// # Errors
    ///
    /// A typed [`BinaryError`] for any structural defect, including
    /// [`BinaryError::MisalignedSection`] when the payload's actual
    /// address misses the 8-byte alignment the in-place tables require.
    /// Hostile input cannot cause a panic or an unbounded allocation.
    pub fn from_bytes(bytes: SharedBytes, start: usize, len: usize) -> Result<Self, BinaryError> {
        Ok(FrozenCsr {
            storage: CsrStorage::Borrowed(ByteCsr::validate(bytes, start, len)?),
        })
    }

    /// The storage this snapshot serves from.
    pub fn storage(&self) -> &CsrStorage {
        &self.storage
    }

    /// Whether this snapshot reads its tables in place from a shared
    /// buffer (as opposed to owned heap arrays).
    pub fn is_in_place(&self) -> bool {
        matches!(self.storage, CsrStorage::Borrowed(_))
    }

    /// Copies this snapshot into owned storage (a no-op clone when it
    /// already is owned). Useful to drop the backing buffer.
    pub fn materialize(&self) -> FrozenCsr {
        match &self.storage {
            CsrStorage::Owned(_) => self.clone(),
            CsrStorage::Borrowed(_) => {
                let n = self.node_count();
                let m = self.edge_count();
                let mut offsets = Vec::with_capacity(n + 1);
                let mut adj = Vec::with_capacity(2 * m);
                offsets.push(0);
                for v in 0..n {
                    self.for_each_neighbor(NodeId::new(v), |to, eid, w| {
                        adj.push(PackedAdj {
                            to: to.raw(),
                            via: eid.raw(),
                            weight: w,
                        });
                    });
                    offsets.push(adj.len() as u32);
                }
                let mut edge_u = Vec::with_capacity(m);
                let mut edge_v = Vec::with_capacity(m);
                let mut edge_w = Vec::with_capacity(m);
                for e in 0..m {
                    let (u, v) = self.edge_endpoints(EdgeId::new(e));
                    edge_u.push(u.raw());
                    edge_v.push(v.raw());
                    edge_w.push(self.edge_weight(EdgeId::new(e)));
                }
                FrozenCsr {
                    storage: CsrStorage::Owned(OwnedCsr {
                        node_count: n,
                        offsets,
                        adj,
                        edge_u,
                        edge_v,
                        edge_w,
                    }),
                }
            }
        }
    }

    /// Exact byte length of this snapshot's v2 CSR payload.
    pub fn payload_v2_len(&self) -> usize {
        match &self.storage {
            CsrStorage::Owned(o) => {
                CSR_PAYLOAD_HEADER_LEN
                    + binary::align8(4 * (o.node_count + 1))
                    + 2 * o.edge_u.len() * CSR_ADJ_RECORD_LEN
                    + o.edge_u.len() * CSR_EDGE_RECORD_LEN
            }
            CsrStorage::Borrowed(b) => b.len,
        }
    }

    /// Serializes this snapshot as the v2 CSR payload: `node_count u64,
    /// edge_count u64`, the `(n + 1) × u32` offset table zero-padded to
    /// an 8-byte boundary, the `2m` packed adjacency records, then the
    /// `m` edge records — all fixed-width little-endian, readable back
    /// in place by [`FrozenCsr::from_bytes`]. Canonical: one snapshot,
    /// one byte string.
    pub fn write_payload_v2(&self, out: &mut Vec<u8>) {
        if let CsrStorage::Borrowed(b) = &self.storage {
            // Validated borrowed bytes are already canonical.
            out.extend_from_slice(b.section());
            return;
        }
        let base = out.len();
        let n = self.node_count();
        let m = self.edge_count();
        binary::put_u64(out, n as u64);
        binary::put_u64(out, m as u64);
        match &self.storage {
            CsrStorage::Owned(o) => {
                for &off in &o.offsets {
                    binary::put_u32(out, off);
                }
                out.resize(
                    base + CSR_PAYLOAD_HEADER_LEN + binary::align8(4 * (n + 1)),
                    0,
                );
                for slot in &o.adj {
                    binary::put_u32(out, slot.to);
                    binary::put_u32(out, slot.via);
                    binary::put_u64(out, slot.weight.get());
                }
                for e in 0..m {
                    binary::put_u32(out, o.edge_u[e]);
                    binary::put_u32(out, o.edge_v[e]);
                    binary::put_u64(out, o.edge_w[e].get());
                }
            }
            CsrStorage::Borrowed(_) => unreachable!("handled above"),
        }
        debug_assert_eq!(out.len() - base, self.payload_v2_len());
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        match &self.storage {
            CsrStorage::Owned(o) => (o.offsets[i + 1] - o.offsets[i]) as usize,
            CsrStorage::Borrowed(b) => {
                assert!(i < b.node_count, "node out of range");
                let data = b.data();
                b.offset(data, i + 1) - b.offset(data, i)
            }
        }
    }
}

impl GraphView for FrozenCsr {
    #[inline]
    fn node_count(&self) -> usize {
        match &self.storage {
            CsrStorage::Owned(o) => o.node_count,
            CsrStorage::Borrowed(b) => b.node_count,
        }
    }

    #[inline]
    fn edge_count(&self) -> usize {
        match &self.storage {
            CsrStorage::Owned(o) => o.edge_u.len(),
            CsrStorage::Borrowed(b) => b.edge_count,
        }
    }

    #[inline]
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        match &self.storage {
            CsrStorage::Owned(o) => (
                NodeId::from(o.edge_u[edge.index()]),
                NodeId::from(o.edge_v[edge.index()]),
            ),
            CsrStorage::Borrowed(b) => {
                assert!(edge.index() < b.edge_count, "edge out of range");
                let at = b.edges_at + edge.index() * CSR_EDGE_RECORD_LEN;
                let data = b.data();
                (
                    NodeId::from(read_u32_at(data, at)),
                    NodeId::from(read_u32_at(data, at + 4)),
                )
            }
        }
    }

    #[inline]
    fn edge_weight(&self, edge: EdgeId) -> Weight {
        match &self.storage {
            CsrStorage::Owned(o) => o.edge_w[edge.index()],
            CsrStorage::Borrowed(b) => {
                assert!(edge.index() < b.edge_count, "edge out of range");
                let at = b.edges_at + edge.index() * CSR_EDGE_RECORD_LEN;
                Weight::new(read_u64_at(b.data(), at + 8)).expect("validated nonzero weight")
            }
        }
    }

    #[inline]
    fn for_each_neighbor(&self, node: NodeId, mut f: impl FnMut(NodeId, EdgeId, Weight)) {
        let i = node.index();
        match &self.storage {
            CsrStorage::Owned(o) => {
                assert!(i < o.node_count, "node out of range");
                let lo = o.offsets[i] as usize;
                let hi = o.offsets[i + 1] as usize;
                for slot in &o.adj[lo..hi] {
                    f(NodeId::from(slot.to), EdgeId::from(slot.via), slot.weight);
                }
            }
            CsrStorage::Borrowed(b) => {
                assert!(i < b.node_count, "node out of range");
                let data = b.data();
                let lo = b.offset(data, i);
                let hi = b.offset(data, i + 1);
                for slot in lo..hi {
                    let at = b.adj_at + slot * CSR_ADJ_RECORD_LEN;
                    f(
                        NodeId::from(read_u32_at(data, at)),
                        EdgeId::from(read_u32_at(data, at + 4)),
                        Weight::new(read_u64_at(data, at + 8)).expect("validated nonzero weight"),
                    );
                }
            }
        }
    }

    fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        match &self.storage {
            CsrStorage::Owned(o) => {
                assert!(
                    u.index() < o.node_count && v.index() < o.node_count,
                    "node out of range"
                );
                let lo = o.offsets[u.index()] as usize;
                let hi = o.offsets[u.index() + 1] as usize;
                o.adj[lo..hi]
                    .iter()
                    .find(|slot| slot.to == v.raw())
                    .map(|slot| EdgeId::from(slot.via))
            }
            CsrStorage::Borrowed(b) => {
                assert!(
                    u.index() < b.node_count && v.index() < b.node_count,
                    "node out of range"
                );
                let data = b.data();
                let lo = b.offset(data, u.index());
                let hi = b.offset(data, u.index() + 1);
                (lo..hi).find_map(|slot| {
                    let at = b.adj_at + slot * CSR_ADJ_RECORD_LEN;
                    (read_u32_at(data, at) == v.raw())
                        .then(|| EdgeId::from(read_u32_at(data, at + 4)))
                })
            }
        }
    }
}

impl From<&Graph> for FrozenCsr {
    fn from(graph: &Graph) -> Self {
        FrozenCsr::from_view(graph)
    }
}

/// Compile-time proof of the serving contract: the frozen layout can be
/// shared across threads as-is — in both storages.
#[allow(dead_code)]
fn frozen_csr_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<FrozenCsr>();
    check::<CsrStorage>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structure_matches_source() {
        let g = generators::petersen();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v));
            let from_graph: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            let from_csr: Vec<(NodeId, EdgeId)> =
                csr.neighbors(v).map(|(n, e, _)| (n, e)).collect();
            assert_eq!(from_graph, from_csr);
        }
    }

    #[test]
    fn sssp_matches_engine_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..10 {
            let g = generators::erdos_renyi(40, 0.15, &mut rng);
            let csr = CsrGraph::from_graph(&g);
            let mask = FaultMask::for_graph(&g);
            let mut engine = dijkstra::DijkstraEngine::new();
            for s in [0usize, 7, 20] {
                assert_eq!(
                    csr.sssp(NodeId::new(s), &mask),
                    engine.sssp(&g, NodeId::new(s), &mask)
                );
            }
        }
    }

    #[test]
    fn bounded_queries_match_under_faults() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = generators::erdos_renyi(30, 0.2, &mut rng);
        let csr = CsrGraph::from_graph(&g);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(3));
        if g.edge_count() > 0 {
            mask.fault_edge(EdgeId::new(0));
        }
        let mut engine = dijkstra::DijkstraEngine::new();
        for bound in [1u64, 2, 4, 50] {
            for (u, v) in [(0usize, 1usize), (2, 29), (5, 17)] {
                assert_eq!(
                    csr.dist_bounded(NodeId::new(u), NodeId::new(v), Dist::finite(bound), &mask),
                    engine.dist_bounded(
                        &g,
                        NodeId::new(u),
                        NodeId::new(v),
                        Dist::finite(bound),
                        &mask
                    ),
                    "bound {bound} pair ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn weighted_distances_preserved() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 5), (1, 2, 2), (0, 3, 1), (3, 2, 3)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let mask = FaultMask::for_graph(&g);
        let d = csr.sssp(NodeId::new(0), &mask);
        assert_eq!(d[2], Dist::finite(4)); // 0-3-2
        assert_eq!(d[1], Dist::finite(5));
    }

    #[test]
    fn from_ref_conversion() {
        let g = generators::cycle(5);
        let csr: CsrGraph = (&g).into();
        assert_eq!(csr.edge_count(), 5);
    }

    fn view_neighbors(view: &impl GraphView, v: NodeId) -> Vec<(NodeId, EdgeId, Weight)> {
        let mut out = Vec::new();
        view.for_each_neighbor(v, |n, e, w| out.push((n, e, w)));
        out
    }

    #[test]
    fn incremental_view_tracks_growing_graph() {
        // Grow a graph and its view in lockstep; adjacency must agree at
        // every step — including mid-buffer, straddling rebuilds.
        let mut rng = StdRng::seed_from_u64(91);
        let g = generators::erdos_renyi(30, 0.25, &mut rng);
        let mut mirror = Graph::new(30);
        let mut view = IncrementalCsr::new(30);
        for (i, (_, e)) in g.edges().enumerate() {
            mirror.add_edge_unchecked(e.u(), e.v(), e.weight());
            let id = view.push_edge(e.u(), e.v(), e.weight());
            assert_eq!(id.index(), i);
            if i % 7 == 0 || i + 1 == g.edge_count() {
                assert_eq!(view.edge_count(), mirror.edge_count());
                for v in mirror.nodes() {
                    assert_eq!(
                        view_neighbors(&view, v),
                        view_neighbors(&mirror, v),
                        "adjacency diverged at vertex {v} after {} edges",
                        i + 1
                    );
                }
            }
        }
        assert!(view.rebuild_count() > 0, "workload should cross the limit");
        assert!(view.pending_len() <= 32);
    }

    #[test]
    fn incremental_view_endpoints_weights_find_edge() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 5), (1, 2, 2), (0, 3, 1), (3, 2, 3)]).unwrap();
        let view = IncrementalCsr::from_graph(&g);
        for (id, e) in g.edges() {
            assert_eq!(view.edge_endpoints(id), e.endpoints());
            assert_eq!(view.edge_weight(id), e.weight());
        }
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v {
                    assert_eq!(view.find_edge(u, v), g.contains_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn incremental_view_dijkstra_matches_graph_under_faults() {
        let mut rng = StdRng::seed_from_u64(92);
        let g = generators::erdos_renyi(40, 0.12, &mut rng);
        let mut view = IncrementalCsr::new(40);
        for (_, e) in g.edges() {
            view.push_edge(e.u(), e.v(), e.weight());
        }
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(5));
        if g.edge_count() > 2 {
            mask.fault_edge(EdgeId::new(2));
        }
        let mut engine = dijkstra::DijkstraEngine::new();
        for (src, dst) in [(0usize, 39usize), (3, 17), (11, 30)] {
            for bound in [2u64, 5, 100] {
                assert_eq!(
                    engine.dist_bounded(
                        &view,
                        NodeId::new(src),
                        NodeId::new(dst),
                        Dist::finite(bound),
                        &mask
                    ),
                    engine.dist_bounded(
                        &g,
                        NodeId::new(src),
                        NodeId::new(dst),
                        Dist::finite(bound),
                        &mask
                    ),
                    "pair ({src},{dst}) bound {bound}"
                );
            }
        }
    }

    #[test]
    fn incremental_view_reset_reuses() {
        let g = generators::cycle(6);
        let mut view = IncrementalCsr::from_graph(&g);
        view.reset(3);
        assert_eq!(GraphView::node_count(&view), 3);
        assert_eq!(GraphView::edge_count(&view), 0);
        view.push_edge(NodeId::new(0), NodeId::new(2), Weight::UNIT);
        assert_eq!(view_neighbors(&view, NodeId::new(0)).len(), 1);
    }

    #[test]
    fn frozen_view_mirrors_source_adjacency() {
        let mut rng = StdRng::seed_from_u64(93);
        let g = generators::erdos_renyi(30, 0.2, &mut rng);
        let inc = IncrementalCsr::from_graph(&g);
        for frozen in [FrozenCsr::from_view(&g), inc.freeze(), (&g).into()] {
            assert_eq!(GraphView::node_count(&frozen), g.node_count());
            assert_eq!(GraphView::edge_count(&frozen), g.edge_count());
            for v in g.nodes() {
                assert_eq!(frozen.degree(v), g.degree(v));
                assert_eq!(view_neighbors(&frozen, v), view_neighbors(&g, v));
            }
            for (id, e) in g.edges() {
                assert_eq!(frozen.edge_endpoints(id), e.endpoints());
                assert_eq!(frozen.edge_weight(id), e.weight());
            }
        }
    }

    #[test]
    fn frozen_view_includes_pending_appends() {
        // Freeze mid-buffer: edges still in the append buffer must land
        // in the packed layout too, in the same edge-id order.
        let mut view = IncrementalCsr::new(5);
        let mut mirror = Graph::new(5);
        for (u, v) in [(0usize, 1usize), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)] {
            view.push_edge(NodeId::new(u), NodeId::new(v), Weight::UNIT);
            mirror.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
        }
        assert!(view.pending_len() > 0, "buffer must be mid-flight");
        let frozen = view.freeze();
        assert_eq!(GraphView::edge_count(&frozen), 6);
        for v in mirror.nodes() {
            assert_eq!(view_neighbors(&frozen, v), view_neighbors(&mirror, v));
        }
        assert_eq!(
            frozen.find_edge(NodeId::new(1), NodeId::new(3)),
            Some(EdgeId::new(5))
        );
        assert_eq!(frozen.find_edge(NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn frozen_dijkstra_matches_graph_under_faults() {
        let mut rng = StdRng::seed_from_u64(94);
        let g = generators::erdos_renyi(40, 0.12, &mut rng);
        let frozen = FrozenCsr::from_view(&g);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(5));
        if g.edge_count() > 2 {
            mask.fault_edge(EdgeId::new(2));
        }
        let mut engine = dijkstra::DijkstraEngine::new();
        for (src, dst) in [(0usize, 39usize), (3, 17), (11, 30)] {
            for bound in [2u64, 5, 100] {
                let over_frozen = engine.shortest_path_bounded(
                    &frozen,
                    NodeId::new(src),
                    NodeId::new(dst),
                    Dist::finite(bound),
                    &mask,
                );
                let over_graph = engine.shortest_path_bounded(
                    &g,
                    NodeId::new(src),
                    NodeId::new(dst),
                    Dist::finite(bound),
                    &mask,
                );
                // Not just equal distances: identical node/edge sequences
                // (the determinism contract the serving layer relies on).
                assert_eq!(over_frozen, over_graph, "pair ({src},{dst}) bound {bound}");
            }
        }
    }

    #[test]
    fn incremental_sync_from_graph_mirrors() {
        let g = generators::grid(3, 4);
        let mut view = IncrementalCsr::new(1);
        view.sync_from_graph(&g);
        assert_eq!(GraphView::node_count(&view), g.node_count());
        assert_eq!(GraphView::edge_count(&view), g.edge_count());
        for v in g.nodes() {
            assert_eq!(view_neighbors(&view, v), view_neighbors(&g, v));
        }
        assert_eq!(view.pending_len(), 0, "sync must freeze everything");
    }

    // ── CsrStorage / in-place (v2 payload) coverage ────────────────────

    use crate::bytes::SharedBytes;
    use crate::io::binary::BinaryError;

    fn v2_payload_of(g: &Graph) -> (FrozenCsr, Vec<u8>) {
        let frozen = FrozenCsr::from_view(g);
        let mut out = Vec::new();
        frozen.write_payload_v2(&mut out);
        assert_eq!(out.len(), frozen.payload_v2_len());
        (frozen, out)
    }

    fn open_in_place(payload: &[u8]) -> FrozenCsr {
        let shared = SharedBytes::copy_aligned(payload);
        let len = shared.len();
        FrozenCsr::from_bytes(shared, 0, len).expect("canonical payload must validate")
    }

    #[test]
    fn byte_csr_round_trips_and_serves_identically() {
        for g in [
            generators::complete(9),
            generators::grid(4, 7),
            generators::path(1),
            Graph::new(3), // nodes but no edges
            Graph::new(0),
        ] {
            let (owned, payload) = v2_payload_of(&g);
            let mapped = open_in_place(&payload);
            assert!(mapped.is_in_place());
            assert!(!owned.is_in_place());
            assert!(matches!(mapped.storage(), CsrStorage::Borrowed(_)));
            assert_eq!(mapped.node_count(), owned.node_count());
            assert_eq!(mapped.edge_count(), owned.edge_count());
            for v in 0..g.node_count() {
                assert_eq!(
                    view_neighbors(&mapped, NodeId::new(v)),
                    view_neighbors(&owned, NodeId::new(v)),
                );
                assert_eq!(mapped.degree(NodeId::new(v)), owned.degree(NodeId::new(v)));
            }
            for e in 0..g.edge_count() {
                assert_eq!(
                    mapped.edge_endpoints(EdgeId::new(e)),
                    owned.edge_endpoints(EdgeId::new(e))
                );
                assert_eq!(
                    mapped.edge_weight(EdgeId::new(e)),
                    owned.edge_weight(EdgeId::new(e))
                );
            }
            for u in 0..g.node_count() {
                for v in 0..g.node_count() {
                    assert_eq!(
                        mapped.find_edge(NodeId::new(u), NodeId::new(v)),
                        owned.find_edge(NodeId::new(u), NodeId::new(v))
                    );
                }
            }
            // Re-encoding the borrowed view is byte-canonical, and
            // materializing it re-owns the same structure.
            let mut re = Vec::new();
            mapped.write_payload_v2(&mut re);
            assert_eq!(re, payload, "borrowed re-encode must be byte-identical");
            let mat = mapped.materialize();
            assert!(!mat.is_in_place());
            let mut mat_bytes = Vec::new();
            mat.write_payload_v2(&mut mat_bytes);
            assert_eq!(mat_bytes, payload);
        }
    }

    #[test]
    fn byte_csr_dijkstra_matches_owned() {
        let g = generators::grid(5, 6);
        let (owned, payload) = v2_payload_of(&g);
        let mapped = open_in_place(&payload);
        let mut mask = FaultMask::with_capacity(g.node_count(), g.edge_count());
        mask.fault_edge(EdgeId::new(3));
        mask.fault_vertex(NodeId::new(7));
        let mut engine = dijkstra::DijkstraEngine::new();
        for (src, dst) in [(0usize, 29usize), (4, 25), (12, 18)] {
            let a = engine.shortest_path_bounded(
                &mapped,
                NodeId::new(src),
                NodeId::new(dst),
                Dist::finite(64),
                &mask,
            );
            let b = engine.shortest_path_bounded(
                &owned,
                NodeId::new(src),
                NodeId::new(dst),
                Dist::finite(64),
                &mask,
            );
            assert_eq!(a, b, "pair ({src},{dst})");
        }
    }

    #[test]
    fn byte_csr_rejects_misaligned_start() {
        let (_, payload) = v2_payload_of(&generators::complete(5));
        // Prepend one byte so the payload starts at an odd offset inside
        // an aligned buffer: typed rejection, no panic, no UB.
        let mut shifted = vec![0u8; 1];
        shifted.extend_from_slice(&payload);
        let shared = SharedBytes::copy_aligned(&shifted);
        let err = FrozenCsr::from_bytes(shared, 1, payload.len()).unwrap_err();
        assert!(
            matches!(err, BinaryError::MisalignedSection { .. }),
            "{err:?}"
        );
        assert_eq!(err.code(), "artifact/misaligned-section");
    }

    #[test]
    fn byte_csr_every_truncation_and_flip_is_typed() {
        let (_, payload) = v2_payload_of(&generators::complete(4));
        for cut in 0..payload.len() {
            let shared = SharedBytes::copy_aligned(&payload[..cut]);
            assert!(
                FrozenCsr::from_bytes(shared, 0, cut).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut accepted_flips = 0usize;
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut mutated = payload.clone();
                mutated[byte] ^= 1 << bit;
                let shared = SharedBytes::copy_aligned(&mutated);
                let len = mutated.len();
                if FrozenCsr::from_bytes(shared, 0, len).is_ok() {
                    accepted_flips += 1;
                }
            }
        }
        // A flip that survives can only change a weight's payload bits
        // (weights are validated nonzero, not value-pinned) or swap edge
        // endpoints into another still-valid simple graph; everything
        // structural must be caught. The whole-container FNV gate is what
        // rejects those at the artifact level.
        let weight_bytes = payload.len() - CSR_PAYLOAD_HEADER_LEN;
        assert!(
            accepted_flips <= weight_bytes * 8,
            "structurally impossible number of accepted flips: {accepted_flips}"
        );
    }

    #[test]
    fn byte_csr_rejects_hostile_headers_without_big_allocs() {
        let (_, payload) = v2_payload_of(&generators::complete(4));
        // Claim an absurd node count: bounded rejection.
        let mut huge = payload.clone();
        huge[0..8].copy_from_slice(&(u64::MAX).to_le_bytes());
        let shared = SharedBytes::copy_aligned(&huge);
        let len = huge.len();
        let err = FrozenCsr::from_bytes(shared, 0, len).unwrap_err();
        assert_eq!(err.code(), "artifact/malformed");
        // Nonzero pad byte after the offset table (complete(4) has n=4:
        // 5 offsets = 20 bytes, padded to 24 — pad at header + 20).
        let mut pad = payload.clone();
        pad[CSR_PAYLOAD_HEADER_LEN + 20] = 0xff;
        let shared = SharedBytes::copy_aligned(&pad);
        let err = FrozenCsr::from_bytes(shared, 0, len).unwrap_err();
        assert_eq!(err.code(), "artifact/malformed");
        // Swap two adjacency slots: canonical-derivation cross-check fires.
        let adj_at = CSR_PAYLOAD_HEADER_LEN + 24;
        let mut swapped = payload.clone();
        let (a, b) = (adj_at, adj_at + CSR_ADJ_RECORD_LEN);
        for i in 0..CSR_ADJ_RECORD_LEN {
            swapped.swap(a + i, b + i);
        }
        let shared = SharedBytes::copy_aligned(&swapped);
        let err = FrozenCsr::from_bytes(shared, 0, len).unwrap_err();
        assert_eq!(err.code(), "artifact/malformed");
    }
}
