//! Compressed-sparse-row graph views, frozen and incremental.
//!
//! [`Graph`] optimizes for growth (FT-greedy appends edges constantly);
//! its `Vec<Vec<…>>` adjacency pays a pointer chase per vertex. Once a
//! graph stops changing — verification sweeps, routing services, repeated
//! audits — a CSR layout with all neighbors in one contiguous array is
//! friendlier to the cache. [`CsrGraph`] is that view: immutable, same
//! vertex/edge ids, with its own fault-masked bounded Dijkstra.
//!
//! [`IncrementalCsr`] covers the in-between case that dominates spanner
//! construction: a graph that *grows* (one kept edge at a time) but is
//! *queried* thousands of times between appends. It keeps a frozen CSR
//! snapshot plus a small append buffer, folding the buffer back into the
//! snapshot once it exceeds a fixed threshold, so queries stay within a
//! few dozen extra scans of flat memory and appends stay amortized O(1).
//!
//! [`FrozenCsr`] is the end state of that life cycle: a construction has
//! finished, the graph will never change again, and from now on it is
//! only *served* — shared across query threads behind an `Arc`. Unlike
//! [`CsrGraph`] it implements [`GraphView`] (so the generic
//! [`DijkstraEngine`](crate::DijkstraEngine) runs over it unchanged, with
//! identical tie-breaks), packs each adjacency slot's `(target, via-edge,
//! weight)` into one contiguous record (one cache line touch per
//! neighbor instead of three parallel-array touches), and is immutable by
//! construction, hence trivially `Send + Sync`.
//!
//! The `substrate` bench compares the layouts on identical query
//! workloads.

use crate::adjacency::GraphView;
use crate::{Dist, EdgeId, FaultMask, Graph, IndexedHeap, NodeId, Weight};

/// An immutable CSR snapshot of a [`Graph`] (same node and edge ids).
///
/// # Examples
///
/// ```
/// use spanner_graph::{csr::CsrGraph, generators, Dist, FaultMask, NodeId};
///
/// let g = generators::complete(8);
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(csr.node_count(), 8);
/// assert_eq!(csr.edge_count(), 28);
/// let mask = FaultMask::for_graph(&g);
/// let d = csr.dist_bounded(NodeId::new(0), NodeId::new(5), Dist::finite(3), &mask);
/// assert_eq!(d, Some(Dist::finite(1)));
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    via_edges: Vec<u32>,
    weights: Vec<Weight>,
    edge_count: usize,
}

impl CsrGraph {
    /// Snapshots `graph` into CSR form.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        let mut via_edges = Vec::with_capacity(2 * graph.edge_count());
        let mut weights = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for v in graph.nodes() {
            for (to, eid) in graph.neighbors(v) {
                targets.push(to.raw());
                via_edges.push(eid.raw());
                weights.push(graph.weight(eid));
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            via_edges,
            weights,
            edge_count: graph.edge_count(),
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates over `(neighbor, edge, weight)` triples of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(
        &self,
        node: NodeId,
    ) -> impl ExactSizeIterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        (lo..hi).map(move |i| {
            (
                NodeId::from(self.targets[i]),
                EdgeId::from(self.via_edges[i]),
                self.weights[i],
            )
        })
    }

    /// Bounded fault-masked Dijkstra distance (same contract as
    /// [`crate::DijkstraEngine::dist_bounded`]).
    pub fn dist_bounded(
        &self,
        src: NodeId,
        dst: NodeId,
        bound: Dist,
        mask: &FaultMask,
    ) -> Option<Dist> {
        if mask.is_vertex_faulted(src) || mask.is_vertex_faulted(dst) {
            return None;
        }
        let n = self.node_count();
        let mut dist = vec![Dist::INFINITE; n];
        let mut heap = IndexedHeap::new(n);
        dist[src.index()] = Dist::ZERO;
        heap.push_or_decrease(src.index(), 0u64);
        while let Some((v, dv)) = heap.pop() {
            let dv = Dist::finite(dv);
            if v == dst.index() {
                return (dv <= bound).then_some(dv);
            }
            if dv > bound {
                return None;
            }
            for (to, eid, w) in self.neighbors(NodeId::new(v)) {
                if !mask.allows(to, eid) {
                    continue;
                }
                let cand = dv + w;
                if cand <= bound && cand < dist[to.index()] {
                    dist[to.index()] = cand;
                    heap.push_or_decrease(to.index(), cand.value().expect("finite"));
                }
            }
        }
        None
    }

    /// Fault-masked single-source distances (unbounded).
    pub fn sssp(&self, src: NodeId, mask: &FaultMask) -> Vec<Dist> {
        let n = self.node_count();
        let mut dist = vec![Dist::INFINITE; n];
        if mask.is_vertex_faulted(src) {
            return dist;
        }
        let mut heap = IndexedHeap::new(n);
        dist[src.index()] = Dist::ZERO;
        heap.push_or_decrease(src.index(), 0u64);
        while let Some((v, dv)) = heap.pop() {
            let dv = Dist::finite(dv);
            for (to, eid, w) in self.neighbors(NodeId::new(v)) {
                if !mask.allows(to, eid) {
                    continue;
                }
                let cand = dv + w;
                if cand < dist[to.index()] {
                    dist[to.index()] = cand;
                    heap.push_or_decrease(to.index(), cand.value().expect("finite"));
                }
            }
        }
        dist
    }
}

impl From<&Graph> for CsrGraph {
    fn from(graph: &Graph) -> Self {
        CsrGraph::from_graph(graph)
    }
}

/// How many appended edges [`IncrementalCsr`] tolerates before folding
/// them back into the frozen CSR arrays. Traversals scan the whole append
/// buffer once per visited vertex, so the buffer is kept small; rebuilds
/// reuse the existing allocations and cost O(n + m).
const PENDING_REBUILD_LIMIT: usize = 32;

/// A growable CSR view: a frozen snapshot plus a bounded append buffer.
///
/// Node and edge ids match the [`Graph`] the view mirrors (edges get dense
/// ids in append order). [`IncrementalCsr::push_edge`] is amortized O(1);
/// neighbor iteration touches the frozen contiguous slice for the vertex
/// plus at most `PENDING_REBUILD_LIMIT` buffered entries. This is the
/// structure the FT-greedy oracle hot loop runs its Dijkstras over.
///
/// Neighbor order follows the [`GraphView`] determinism contract
/// (increasing edge id), so traversals over the view tie-break exactly
/// like traversals over the mirrored [`Graph`].
///
/// # Examples
///
/// ```
/// use spanner_graph::{GraphView, IncrementalCsr, NodeId, Weight};
///
/// let mut view = IncrementalCsr::new(3);
/// view.push_edge(NodeId::new(0), NodeId::new(1), Weight::UNIT);
/// view.push_edge(NodeId::new(1), NodeId::new(2), Weight::UNIT);
/// assert_eq!(view.edge_count(), 2);
/// let mut around_one = Vec::new();
/// view.for_each_neighbor(NodeId::new(1), |to, _, _| around_one.push(to.index()));
/// assert_eq!(around_one, vec![0, 2]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IncrementalCsr {
    node_count: usize,
    /// Frozen CSR arrays covering edge ids `0..frozen`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    via_edges: Vec<u32>,
    csr_weights: Vec<Weight>,
    frozen: usize,
    /// Per-edge stores covering *all* edges (frozen and pending alike).
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    edge_w: Vec<Weight>,
    /// Rebuild counter (exposed for the scratch-reuse regression tests).
    rebuilds: u64,
    /// Reused cursor array for counting-sort rebuilds.
    cursor: Vec<u32>,
}

impl IncrementalCsr {
    /// Creates an empty view over `node_count` isolated vertices.
    pub fn new(node_count: usize) -> Self {
        IncrementalCsr {
            node_count,
            offsets: vec![0; node_count + 1],
            ..IncrementalCsr::default()
        }
    }

    /// Builds a view mirroring `graph` (same node and edge ids), fully
    /// frozen into CSR form.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut view = IncrementalCsr::new(graph.node_count());
        view.sync_from_graph(graph);
        view
    }

    /// Resets to `node_count` isolated vertices, keeping allocations.
    pub fn reset(&mut self, node_count: usize) {
        self.node_count = node_count;
        self.offsets.clear();
        self.offsets.resize(node_count + 1, 0);
        self.targets.clear();
        self.via_edges.clear();
        self.csr_weights.clear();
        self.frozen = 0;
        self.edge_u.clear();
        self.edge_v.clear();
        self.edge_w.clear();
    }

    /// Re-mirrors `graph` from scratch (reusing allocations) and freezes
    /// the whole edge set into CSR form. Used by oracles that accept an
    /// arbitrary [`Graph`] per query and must resynchronize their view.
    pub fn sync_from_graph(&mut self, graph: &Graph) {
        self.reset(graph.node_count());
        for (_, e) in graph.edges() {
            self.edge_u.push(e.u().raw());
            self.edge_v.push(e.v().raw());
            self.edge_w.push(e.weight());
        }
        if !self.edge_u.is_empty() {
            self.rebuild();
        }
    }

    /// Appends an edge, returning its dense id. Amortized O(1): every
    /// `PENDING_REBUILD_LIMIT` appends trigger an O(n + m) fold of the
    /// append buffer into the frozen arrays.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`. Duplicates are
    /// not detected (mirroring [`Graph::add_edge_unchecked`]).
    pub fn push_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        assert!(
            u.index() < self.node_count && v.index() < self.node_count,
            "edge endpoint out of range"
        );
        assert!(u != v, "self-loop at {u}");
        let id = EdgeId::new(self.edge_u.len());
        self.edge_u.push(u.raw());
        self.edge_v.push(v.raw());
        self.edge_w.push(weight);
        if self.edge_u.len() - self.frozen > PENDING_REBUILD_LIMIT {
            self.rebuild();
        }
        id
    }

    /// Folds the append buffer into the frozen CSR arrays (counting sort
    /// by endpoint, filling in edge-id order so per-node neighbor lists
    /// stay sorted by edge id). Reuses all allocations.
    fn rebuild(&mut self) {
        self.rebuilds += 1;
        let n = self.node_count;
        let m = self.edge_u.len();
        self.cursor.clear();
        self.cursor.resize(n, 0);
        for i in 0..m {
            self.cursor[self.edge_u[i] as usize] += 1;
            self.cursor[self.edge_v[i] as usize] += 1;
        }
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0);
        let mut running = 0u32;
        for v in 0..n {
            running += self.cursor[v];
            self.offsets.push(running);
        }
        self.targets.clear();
        self.targets.resize(2 * m, 0);
        self.via_edges.clear();
        self.via_edges.resize(2 * m, 0);
        self.csr_weights.clear();
        self.csr_weights.resize(2 * m, Weight::UNIT);
        // Reuse `cursor` as per-node write positions.
        self.cursor.copy_from_slice(&self.offsets[..n]);
        for i in 0..m {
            let (u, v, w) = (self.edge_u[i], self.edge_v[i], self.edge_w[i]);
            let pu = self.cursor[u as usize] as usize;
            self.targets[pu] = v;
            self.via_edges[pu] = i as u32;
            self.csr_weights[pu] = w;
            self.cursor[u as usize] += 1;
            let pv = self.cursor[v as usize] as usize;
            self.targets[pv] = u;
            self.via_edges[pv] = i as u32;
            self.csr_weights[pv] = w;
            self.cursor[v as usize] += 1;
        }
        self.frozen = m;
    }

    /// Number of buffer folds performed so far (a reuse diagnostic: after
    /// warm-up the count advances once per `PENDING_REBUILD_LIMIT`
    /// appends, never per query).
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Number of edges still in the append buffer (bounded by
    /// `PENDING_REBUILD_LIMIT`).
    pub fn pending_len(&self) -> usize {
        self.edge_u.len() - self.frozen
    }

    /// Finalizes this view into an immutable [`FrozenCsr`] (folding any
    /// pending appends into the packed layout). The view itself is left
    /// untouched; freezing is the hand-off point from construction to
    /// serving.
    pub fn freeze(&self) -> FrozenCsr {
        FrozenCsr::from_view(self)
    }
}

impl GraphView for IncrementalCsr {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_u.len()
    }

    #[inline]
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        (
            NodeId::from(self.edge_u[edge.index()]),
            NodeId::from(self.edge_v[edge.index()]),
        )
    }

    #[inline]
    fn edge_weight(&self, edge: EdgeId) -> Weight {
        self.edge_w[edge.index()]
    }

    #[inline]
    fn for_each_neighbor(&self, node: NodeId, mut f: impl FnMut(NodeId, EdgeId, Weight)) {
        let i = node.index();
        assert!(i < self.node_count, "node out of range");
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        for p in lo..hi {
            f(
                NodeId::from(self.targets[p]),
                EdgeId::from(self.via_edges[p]),
                self.csr_weights[p],
            );
        }
        let node = node.raw();
        for e in self.frozen..self.edge_u.len() {
            if self.edge_u[e] == node {
                f(NodeId::from(self.edge_v[e]), EdgeId::new(e), self.edge_w[e]);
            } else if self.edge_v[e] == node {
                f(NodeId::from(self.edge_u[e]), EdgeId::new(e), self.edge_w[e]);
            }
        }
    }

    fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        assert!(
            u.index() < self.node_count && v.index() < self.node_count,
            "node out of range"
        );
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        for p in lo..hi {
            if self.targets[p] == v.raw() {
                return Some(EdgeId::from(self.via_edges[p]));
            }
        }
        for e in self.frozen..self.edge_u.len() {
            if (self.edge_u[e] == u.raw() && self.edge_v[e] == v.raw())
                || (self.edge_u[e] == v.raw() && self.edge_v[e] == u.raw())
            {
                return Some(EdgeId::new(e));
            }
        }
        None
    }
}

impl From<&Graph> for IncrementalCsr {
    fn from(graph: &Graph) -> Self {
        IncrementalCsr::from_graph(graph)
    }
}

/// One packed adjacency slot of a [`FrozenCsr`]: the neighbor, the edge
/// crossed to reach it, and that edge's weight, side by side so a
/// traversal touches one record instead of three parallel arrays.
#[derive(Clone, Copy, Debug)]
struct PackedAdj {
    to: u32,
    via: u32,
    weight: Weight,
}

/// A read-only, cache-packed CSR snapshot — the serving layout.
///
/// Built once from any [`GraphView`] (a [`Graph`], an [`IncrementalCsr`]
/// via [`IncrementalCsr::freeze`], …) with the same node and edge ids and
/// the same neighbor order, so traversals over the frozen layout
/// tie-break exactly like traversals over the source. The structure is
/// immutable after construction and holds no interior mutability, so it
/// is `Send + Sync` and cheap to share across query threads behind an
/// `Arc` — this is what the freeze-and-serve read path
/// (`spanner_core`'s `FrozenSpanner`/`QueryEngine`) hands to its workers.
///
/// # Examples
///
/// ```
/// use spanner_graph::{
///     csr::FrozenCsr, generators, DijkstraEngine, Dist, FaultMask, GraphView, NodeId,
/// };
///
/// let g = generators::complete(8);
/// let frozen = FrozenCsr::from_view(&g);
/// let mask = FaultMask::with_capacity(8, frozen.edge_count());
/// let mut engine = DijkstraEngine::new();
/// let d = engine.dist_bounded(&frozen, NodeId::new(0), NodeId::new(5), Dist::finite(3), &mask);
/// assert_eq!(d, Some(Dist::finite(1)));
/// ```
#[derive(Clone, Debug)]
pub struct FrozenCsr {
    node_count: usize,
    offsets: Vec<u32>,
    adj: Vec<PackedAdj>,
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    edge_w: Vec<Weight>,
}

impl FrozenCsr {
    /// Snapshots any graph view into the packed frozen layout (same node
    /// and edge ids, same neighbor order).
    pub fn from_view<V: GraphView>(view: &V) -> Self {
        let n = view.node_count();
        let m = view.edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(2 * m);
        offsets.push(0);
        for v in 0..n {
            view.for_each_neighbor(NodeId::new(v), |to, eid, w| {
                adj.push(PackedAdj {
                    to: to.raw(),
                    via: eid.raw(),
                    weight: w,
                });
            });
            offsets.push(adj.len() as u32);
        }
        let mut edge_u = Vec::with_capacity(m);
        let mut edge_v = Vec::with_capacity(m);
        let mut edge_w = Vec::with_capacity(m);
        for e in 0..m {
            let (u, v) = view.edge_endpoints(EdgeId::new(e));
            edge_u.push(u.raw());
            edge_v.push(v.raw());
            edge_w.push(view.edge_weight(EdgeId::new(e)));
        }
        FrozenCsr {
            node_count: n,
            offsets,
            adj,
            edge_u,
            edge_v,
            edge_w,
        }
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

impl GraphView for FrozenCsr {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_u.len()
    }

    #[inline]
    fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        (
            NodeId::from(self.edge_u[edge.index()]),
            NodeId::from(self.edge_v[edge.index()]),
        )
    }

    #[inline]
    fn edge_weight(&self, edge: EdgeId) -> Weight {
        self.edge_w[edge.index()]
    }

    #[inline]
    fn for_each_neighbor(&self, node: NodeId, mut f: impl FnMut(NodeId, EdgeId, Weight)) {
        let i = node.index();
        assert!(i < self.node_count, "node out of range");
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        for slot in &self.adj[lo..hi] {
            f(NodeId::from(slot.to), EdgeId::from(slot.via), slot.weight);
        }
    }

    fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        assert!(
            u.index() < self.node_count && v.index() < self.node_count,
            "node out of range"
        );
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        self.adj[lo..hi]
            .iter()
            .find(|slot| slot.to == v.raw())
            .map(|slot| EdgeId::from(slot.via))
    }
}

impl From<&Graph> for FrozenCsr {
    fn from(graph: &Graph) -> Self {
        FrozenCsr::from_view(graph)
    }
}

/// Compile-time proof of the serving contract: the frozen layout can be
/// shared across threads as-is.
#[allow(dead_code)]
fn frozen_csr_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<FrozenCsr>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structure_matches_source() {
        let g = generators::petersen();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v));
            let from_graph: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            let from_csr: Vec<(NodeId, EdgeId)> =
                csr.neighbors(v).map(|(n, e, _)| (n, e)).collect();
            assert_eq!(from_graph, from_csr);
        }
    }

    #[test]
    fn sssp_matches_engine_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..10 {
            let g = generators::erdos_renyi(40, 0.15, &mut rng);
            let csr = CsrGraph::from_graph(&g);
            let mask = FaultMask::for_graph(&g);
            let mut engine = dijkstra::DijkstraEngine::new();
            for s in [0usize, 7, 20] {
                assert_eq!(
                    csr.sssp(NodeId::new(s), &mask),
                    engine.sssp(&g, NodeId::new(s), &mask)
                );
            }
        }
    }

    #[test]
    fn bounded_queries_match_under_faults() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = generators::erdos_renyi(30, 0.2, &mut rng);
        let csr = CsrGraph::from_graph(&g);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(3));
        if g.edge_count() > 0 {
            mask.fault_edge(EdgeId::new(0));
        }
        let mut engine = dijkstra::DijkstraEngine::new();
        for bound in [1u64, 2, 4, 50] {
            for (u, v) in [(0usize, 1usize), (2, 29), (5, 17)] {
                assert_eq!(
                    csr.dist_bounded(NodeId::new(u), NodeId::new(v), Dist::finite(bound), &mask),
                    engine.dist_bounded(
                        &g,
                        NodeId::new(u),
                        NodeId::new(v),
                        Dist::finite(bound),
                        &mask
                    ),
                    "bound {bound} pair ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn weighted_distances_preserved() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 5), (1, 2, 2), (0, 3, 1), (3, 2, 3)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let mask = FaultMask::for_graph(&g);
        let d = csr.sssp(NodeId::new(0), &mask);
        assert_eq!(d[2], Dist::finite(4)); // 0-3-2
        assert_eq!(d[1], Dist::finite(5));
    }

    #[test]
    fn from_ref_conversion() {
        let g = generators::cycle(5);
        let csr: CsrGraph = (&g).into();
        assert_eq!(csr.edge_count(), 5);
    }

    fn view_neighbors(view: &impl GraphView, v: NodeId) -> Vec<(NodeId, EdgeId, Weight)> {
        let mut out = Vec::new();
        view.for_each_neighbor(v, |n, e, w| out.push((n, e, w)));
        out
    }

    #[test]
    fn incremental_view_tracks_growing_graph() {
        // Grow a graph and its view in lockstep; adjacency must agree at
        // every step — including mid-buffer, straddling rebuilds.
        let mut rng = StdRng::seed_from_u64(91);
        let g = generators::erdos_renyi(30, 0.25, &mut rng);
        let mut mirror = Graph::new(30);
        let mut view = IncrementalCsr::new(30);
        for (i, (_, e)) in g.edges().enumerate() {
            mirror.add_edge_unchecked(e.u(), e.v(), e.weight());
            let id = view.push_edge(e.u(), e.v(), e.weight());
            assert_eq!(id.index(), i);
            if i % 7 == 0 || i + 1 == g.edge_count() {
                assert_eq!(view.edge_count(), mirror.edge_count());
                for v in mirror.nodes() {
                    assert_eq!(
                        view_neighbors(&view, v),
                        view_neighbors(&mirror, v),
                        "adjacency diverged at vertex {v} after {} edges",
                        i + 1
                    );
                }
            }
        }
        assert!(view.rebuild_count() > 0, "workload should cross the limit");
        assert!(view.pending_len() <= 32);
    }

    #[test]
    fn incremental_view_endpoints_weights_find_edge() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 5), (1, 2, 2), (0, 3, 1), (3, 2, 3)]).unwrap();
        let view = IncrementalCsr::from_graph(&g);
        for (id, e) in g.edges() {
            assert_eq!(view.edge_endpoints(id), e.endpoints());
            assert_eq!(view.edge_weight(id), e.weight());
        }
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v {
                    assert_eq!(view.find_edge(u, v), g.contains_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn incremental_view_dijkstra_matches_graph_under_faults() {
        let mut rng = StdRng::seed_from_u64(92);
        let g = generators::erdos_renyi(40, 0.12, &mut rng);
        let mut view = IncrementalCsr::new(40);
        for (_, e) in g.edges() {
            view.push_edge(e.u(), e.v(), e.weight());
        }
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(5));
        if g.edge_count() > 2 {
            mask.fault_edge(EdgeId::new(2));
        }
        let mut engine = dijkstra::DijkstraEngine::new();
        for (src, dst) in [(0usize, 39usize), (3, 17), (11, 30)] {
            for bound in [2u64, 5, 100] {
                assert_eq!(
                    engine.dist_bounded(
                        &view,
                        NodeId::new(src),
                        NodeId::new(dst),
                        Dist::finite(bound),
                        &mask
                    ),
                    engine.dist_bounded(
                        &g,
                        NodeId::new(src),
                        NodeId::new(dst),
                        Dist::finite(bound),
                        &mask
                    ),
                    "pair ({src},{dst}) bound {bound}"
                );
            }
        }
    }

    #[test]
    fn incremental_view_reset_reuses() {
        let g = generators::cycle(6);
        let mut view = IncrementalCsr::from_graph(&g);
        view.reset(3);
        assert_eq!(GraphView::node_count(&view), 3);
        assert_eq!(GraphView::edge_count(&view), 0);
        view.push_edge(NodeId::new(0), NodeId::new(2), Weight::UNIT);
        assert_eq!(view_neighbors(&view, NodeId::new(0)).len(), 1);
    }

    #[test]
    fn frozen_view_mirrors_source_adjacency() {
        let mut rng = StdRng::seed_from_u64(93);
        let g = generators::erdos_renyi(30, 0.2, &mut rng);
        let inc = IncrementalCsr::from_graph(&g);
        for frozen in [FrozenCsr::from_view(&g), inc.freeze(), (&g).into()] {
            assert_eq!(GraphView::node_count(&frozen), g.node_count());
            assert_eq!(GraphView::edge_count(&frozen), g.edge_count());
            for v in g.nodes() {
                assert_eq!(frozen.degree(v), g.degree(v));
                assert_eq!(view_neighbors(&frozen, v), view_neighbors(&g, v));
            }
            for (id, e) in g.edges() {
                assert_eq!(frozen.edge_endpoints(id), e.endpoints());
                assert_eq!(frozen.edge_weight(id), e.weight());
            }
        }
    }

    #[test]
    fn frozen_view_includes_pending_appends() {
        // Freeze mid-buffer: edges still in the append buffer must land
        // in the packed layout too, in the same edge-id order.
        let mut view = IncrementalCsr::new(5);
        let mut mirror = Graph::new(5);
        for (u, v) in [(0usize, 1usize), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)] {
            view.push_edge(NodeId::new(u), NodeId::new(v), Weight::UNIT);
            mirror.add_edge_unchecked(NodeId::new(u), NodeId::new(v), Weight::UNIT);
        }
        assert!(view.pending_len() > 0, "buffer must be mid-flight");
        let frozen = view.freeze();
        assert_eq!(GraphView::edge_count(&frozen), 6);
        for v in mirror.nodes() {
            assert_eq!(view_neighbors(&frozen, v), view_neighbors(&mirror, v));
        }
        assert_eq!(
            frozen.find_edge(NodeId::new(1), NodeId::new(3)),
            Some(EdgeId::new(5))
        );
        assert_eq!(frozen.find_edge(NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn frozen_dijkstra_matches_graph_under_faults() {
        let mut rng = StdRng::seed_from_u64(94);
        let g = generators::erdos_renyi(40, 0.12, &mut rng);
        let frozen = FrozenCsr::from_view(&g);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(5));
        if g.edge_count() > 2 {
            mask.fault_edge(EdgeId::new(2));
        }
        let mut engine = dijkstra::DijkstraEngine::new();
        for (src, dst) in [(0usize, 39usize), (3, 17), (11, 30)] {
            for bound in [2u64, 5, 100] {
                let over_frozen = engine.shortest_path_bounded(
                    &frozen,
                    NodeId::new(src),
                    NodeId::new(dst),
                    Dist::finite(bound),
                    &mask,
                );
                let over_graph = engine.shortest_path_bounded(
                    &g,
                    NodeId::new(src),
                    NodeId::new(dst),
                    Dist::finite(bound),
                    &mask,
                );
                // Not just equal distances: identical node/edge sequences
                // (the determinism contract the serving layer relies on).
                assert_eq!(over_frozen, over_graph, "pair ({src},{dst}) bound {bound}");
            }
        }
    }

    #[test]
    fn incremental_sync_from_graph_mirrors() {
        let g = generators::grid(3, 4);
        let mut view = IncrementalCsr::new(1);
        view.sync_from_graph(&g);
        assert_eq!(GraphView::node_count(&view), g.node_count());
        assert_eq!(GraphView::edge_count(&view), g.edge_count());
        for v in g.nodes() {
            assert_eq!(view_neighbors(&view, v), view_neighbors(&g, v));
        }
        assert_eq!(view.pending_len(), 0, "sync must freeze everything");
    }
}
