//! Graph substrate for the `vft-spanner` workspace.
//!
//! This crate provides everything the fault tolerant spanner algorithms of
//! Bodwin–Patel (PODC 2019) need from a graph library, built from scratch:
//!
//! * [`Graph`] — undirected, weighted, simple, growable graphs with dense
//!   [`NodeId`]/[`EdgeId`] indices.
//! * [`FaultMask`] — logical vertex/edge deletion for evaluating
//!   `dist_{H ∖ F}` without copying graphs.
//! * [`DijkstraEngine`] — reusable, bound-aware, fault-masked shortest
//!   paths (the inner loop of the fault-set search oracles).
//! * [`girth`]/[`cycles`] — girth computation and bounded cycle
//!   enumeration, the language of the paper's blocking-set arguments.
//! * [`generators`] — deterministic and random graph families used by the
//!   experiment harness, including Cartesian products for the lower-bound
//!   construction.
//! * Supporting structures: [`BitSet`], [`IndexedHeap`], [`UnionFind`],
//!   [`subgraph`] extraction, [`bfs`] utilities, and [`dot`] export.
//!
//! # Example
//!
//! ```
//! use spanner_graph::{dijkstra, Dist, FaultMask, Graph, NodeId};
//!
//! // A 4-cycle with one heavy chord.
//! let g = Graph::from_weighted_edges(
//!     4,
//!     [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 3)],
//! )?;
//! let mut mask = FaultMask::for_graph(&g);
//! assert_eq!(
//!     dijkstra::dist(&g, NodeId::new(0), NodeId::new(2), &mask),
//!     Dist::finite(2)
//! );
//! // Fault vertex 1: the path through the chord or the long way survives.
//! mask.fault_vertex(NodeId::new(1));
//! assert_eq!(
//!     dijkstra::dist(&g, NodeId::new(0), NodeId::new(2), &mask),
//!     Dist::finite(2)
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod bitset;
mod error;
mod graph;
mod heap;
mod ids;
mod union_find;
mod view;
mod weight;

pub mod apsp;
pub mod bfs;
pub mod bytes;
pub mod connectivity;
pub mod csr;
pub mod cycles;
pub mod degeneracy;
pub mod dijkstra;
pub mod dot;
pub mod flow;
pub mod generators;
pub mod girth;
pub mod io;
pub mod mst;
pub mod partition;
pub mod subgraph;
pub mod transform;

pub use adjacency::GraphView;
pub use bitset::BitSet;
pub use bytes::SharedBytes;
pub use csr::{CsrStorage, FrozenCsr, IncrementalCsr};
pub use dijkstra::{DijkstraEngine, PathScratch, ShortestPath};
pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use heap::IndexedHeap;
pub use ids::{EdgeId, NodeId};
pub use union_find::UnionFind;
pub use view::FaultMask;
pub use weight::{Dist, Weight};
