//! Structure-aware mutation of `VFTSPANR`/`VFTGRAPH` containers.
//!
//! A naive byte-flipping fuzzer gets stopped at the door: the container
//! verifies its trailing FNV-1a checksum *before* parsing any section,
//! so random corruption almost always lands in the `artifact/bit-flip`
//! bucket and the section parsers never see a hostile byte. The
//! [`Mutator`] therefore understands both container frames — the v1
//! `(tag, len, payload)` record stream and the v2 alignment-padded
//! section table — and reseals most mutants with a recomputed checksum
//! ([`Mutant::checksum_fixed`]) so the mutation reaches the decode
//! logic it is aimed at. Resealing is version-aware: a container whose
//! header declares v2 is sealed with the word-wise
//! [`fnv1a64_words`] the v2 parser verifies, everything else with the
//! byte-wise [`fnv1a64`].
//!
//! Each [`AttackClass`] names a *mutation strategy*, not a decoder
//! outcome: a truncation can surface as `artifact/truncation` or (when
//! it severs a whole section) `artifact/missing-section`; an inflated
//! length field as `artifact/truncation` or `artifact/malformed`. The
//! mapping from class to the set of plausible stable codes is
//! documented in `docs/ARTIFACT_FORMAT.md` §8, and the committed corpus
//! pins observed `(class, code)` pairs by filename.
//!
//! Everything here is deterministic: the same `Mutator` seed and the
//! same seed artifact produce byte-identical mutants, in-process and in
//! CI.

use rand::{rngs::StdRng, Rng, SeedableRng};
use spanner_graph::io::binary::{
    fnv1a64, fnv1a64_words, put_u64, ContainerWriterV2, V2_HEADER_LEN, V2_SECTION_ENTRY_LEN,
};

/// Byte width of the v1 container header (magic[8] + version u32).
const HEADER_LEN: usize = 12;

/// Byte width of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Byte width of a v1 section's `(tag: u32, len: u64)` record header.
const SECTION_HEADER_LEN: usize = 4 + 8;

/// Whether these bytes declare the v2 in-place layout — the same
/// dispatch `FrozenSpanner::decode` uses (version field 2), minus the
/// `VFTGRAPH` magic, which routes to the v1-framed graph codec
/// regardless of its version field.
pub(crate) fn is_v2(bytes: &[u8]) -> bool {
    bytes.len() >= HEADER_LEN && bytes[..8] != *b"VFTGRAPH" && bytes[8..12] == 2u32.to_le_bytes()
}

/// The mutation strategies the fuzzer applies, one per adversarial
/// capability we defend against. See the taxonomy appendix in
/// `docs/ARTIFACT_FORMAT.md` §8 for the decoder codes each class is
/// expected to surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackClass {
    /// Cut the byte stream short — mid-field, mid-section, or exactly at
    /// a structural boundary (lost trailing bytes in transfer).
    Truncation,
    /// Flip a single bit. Usually resealed with a fresh checksum so the
    /// corruption reaches the section parsers; left unsealed some of the
    /// time to keep the checksum gate itself under test.
    BitFlip,
    /// Duplicate a section: a complete `(tag, len, payload)` v1 record,
    /// or a v2 re-lay with one tag appearing twice in the table (a
    /// replayed/spliced-in section from another copy of the file).
    SectionReplay,
    /// Transplant one section's payload into another section's frame,
    /// keeping the frame lengths self-consistent (well-formed container,
    /// hostile content).
    SectionSplice,
    /// Inflate a section's length field beyond the bytes that follow
    /// (the classic allocate-from-attacker-controlled-length probe).
    LengthInflation,
    /// Perturb a count field inside one section so it contradicts
    /// another section (e.g. meta's node count vs the table lengths).
    CrossSection,
}

impl AttackClass {
    /// Every class, in the fixed order used by reports and corpus
    /// generation.
    pub const ALL: [AttackClass; 6] = [
        AttackClass::Truncation,
        AttackClass::BitFlip,
        AttackClass::SectionReplay,
        AttackClass::SectionSplice,
        AttackClass::LengthInflation,
        AttackClass::CrossSection,
    ];

    /// Stable kebab-case name, used in corpus filenames and the
    /// `vft-spanner/fuzz-1` findings artifact.
    pub fn name(self) -> &'static str {
        match self {
            AttackClass::Truncation => "truncation",
            AttackClass::BitFlip => "bit-flip",
            AttackClass::SectionReplay => "section-replay",
            AttackClass::SectionSplice => "section-splice",
            AttackClass::LengthInflation => "length-inflation",
            AttackClass::CrossSection => "cross-section",
        }
    }

    /// Parses a [`name`](Self::name) back into the class.
    pub fn from_name(name: &str) -> Option<AttackClass> {
        AttackClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// One hostile input produced by the [`Mutator`].
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The strategy that produced these bytes. When container framing
    /// could not be recovered from the seed, strategies degrade to
    /// [`AttackClass::BitFlip`] and this field says so.
    pub class: AttackClass,
    /// Whether the trailing checksum was recomputed after mutation, so
    /// the bytes pass the integrity gate and exercise section parsing.
    pub checksum_fixed: bool,
    /// The mutated container bytes.
    pub bytes: Vec<u8>,
}

/// One section located by the lenient frame parser: byte offsets into
/// the original container. v1 records are contiguous
/// (`start..payload..end`); v2 sections split across the table entry
/// (`start`) and the padded payload region they point at.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameSection {
    /// Offset of the record header: the `tag` u32 of a v1 record, or a
    /// v2 table entry.
    pub(crate) start: usize,
    /// The section tag.
    pub(crate) tag: u32,
    /// Offset of the `len` u64 field (inside the v1 record header or
    /// the v2 table entry).
    pub(crate) len_at: usize,
    /// Offset of the payload.
    pub(crate) payload: usize,
    /// Payload byte length as claimed by the len field (and verified to
    /// fit, else the parser stops).
    pub(crate) len: usize,
}

impl FrameSection {
    pub(crate) fn end(&self) -> usize {
        self.payload + self.len
    }
}

/// Lenient section-frame recovery, dispatching on the declared version:
/// v1 containers are walked as `(tag, len, payload)` records, v2
/// containers through their section table, stopping (not failing) at
/// the first record that does not fit. Unlike the real parsers it
/// tolerates unknown tags, duplicates, and broken padding — mutants of
/// mutants must still be mutable. Also used by
/// [`crate::seeds::directed_probes`] to aim byte surgery at a specific
/// section.
pub(crate) fn frame_sections(bytes: &[u8]) -> Vec<FrameSection> {
    if is_v2(bytes) {
        return frame_sections_v2(bytes);
    }
    let mut sections = Vec::new();
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return sections;
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let mut at = HEADER_LEN;
    while at + SECTION_HEADER_LEN <= body_end {
        let tag = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let len_bytes: [u8; 8] = bytes[at + 4..at + SECTION_HEADER_LEN].try_into().unwrap();
        let len = u64::from_le_bytes(len_bytes);
        let payload = at + SECTION_HEADER_LEN;
        let Some(end) = (len as usize).checked_add(payload) else {
            break;
        };
        if len > (body_end - payload) as u64 {
            break;
        }
        sections.push(FrameSection {
            start: at,
            tag,
            len_at: at + 4,
            payload,
            len: len as usize,
        });
        at = end;
    }
    sections
}

/// The v2 half of [`frame_sections`]: reads the section table leniently
/// (count bounded by the bytes present, entries kept only while their
/// payloads fit), ignoring reserved fields, alignment, and padding —
/// those are the parser's gates, and mutants that break them are still
/// frames worth mutating further.
fn frame_sections_v2(bytes: &[u8]) -> Vec<FrameSection> {
    let mut sections = Vec::new();
    if bytes.len() < V2_HEADER_LEN + CHECKSUM_LEN {
        return sections;
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let claimed = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let fits = ((body_end - V2_HEADER_LEN) / V2_SECTION_ENTRY_LEN) as u64;
    for i in 0..claimed.min(fits) as usize {
        let entry = V2_HEADER_LEN + i * V2_SECTION_ENTRY_LEN;
        let tag = u32::from_le_bytes(bytes[entry..entry + 4].try_into().unwrap());
        let offset = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[entry + 16..entry + 24].try_into().unwrap());
        let (Ok(payload), Ok(len)) = (usize::try_from(offset), usize::try_from(len)) else {
            break;
        };
        if payload < V2_HEADER_LEN || !payload.checked_add(len).is_some_and(|end| end <= body_end) {
            break;
        }
        sections.push(FrameSection {
            start: entry,
            tag,
            len_at: entry + 16,
            payload,
            len,
        });
    }
    sections
}

/// Recomputes and rewrites the trailing checksum so the mutant passes
/// the integrity gate, with the checksum the declared version's parser
/// verifies (word-wise for v2, byte-wise otherwise). No-op on inputs
/// too short to carry one.
pub fn fix_checksum(bytes: &mut Vec<u8>) -> bool {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return false;
    }
    let body = bytes.len() - CHECKSUM_LEN;
    let sum = if is_v2(bytes) {
        fnv1a64_words(&bytes[..body])
    } else {
        fnv1a64(&bytes[..body])
    };
    bytes.truncate(body);
    put_u64(bytes, sum);
    true
}

/// Re-lays a v2 container from `(tag, payload)` parts with the seed's
/// magic, version, and flags — canonical framing (honest table, correct
/// padding, fresh word-wise checksum) around whatever hostile content
/// the parts carry.
fn rebuild_v2(seed: &[u8], parts: Vec<(u32, Vec<u8>)>) -> Vec<u8> {
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&seed[..8]);
    let version = u32::from_le_bytes(seed[8..12].try_into().unwrap());
    let flags = u32::from_le_bytes(seed[12..16].try_into().unwrap());
    let mut w = ContainerWriterV2::new(magic, version, flags);
    for (tag, payload) in parts {
        w.section(tag, payload);
    }
    w.finish()
}

/// The seeded structure-aware mutation engine.
///
/// Deterministic by construction: mutants depend only on the seed value
/// and the sequence of calls, never on time, addresses, or iteration
/// order of anything unordered.
pub struct Mutator {
    rng: StdRng,
}

impl Mutator {
    /// Creates a mutator from a seed. Equal seeds ⇒ equal mutant
    /// streams.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Produces one mutant of `seed_bytes`, cycling the attack class
    /// pseudo-randomly.
    pub fn mutate(&mut self, seed_bytes: &[u8]) -> Mutant {
        let class = AttackClass::ALL[self.rng.gen_range(0..AttackClass::ALL.len())];
        self.mutate_class(class, seed_bytes)
    }

    /// Produces one mutant using the given strategy. Strategies that
    /// need recoverable section framing fall back to a plain bit flip
    /// (reported as [`AttackClass::BitFlip`]) when the seed has none.
    pub fn mutate_class(&mut self, class: AttackClass, seed_bytes: &[u8]) -> Mutant {
        match class {
            AttackClass::Truncation => self.truncate(seed_bytes),
            AttackClass::BitFlip => self.bit_flip(seed_bytes),
            AttackClass::SectionReplay => self.section_replay(seed_bytes),
            AttackClass::SectionSplice => self.section_splice(seed_bytes),
            AttackClass::LengthInflation => self.length_inflation(seed_bytes),
            AttackClass::CrossSection => self.cross_section(seed_bytes),
        }
    }

    fn truncate(&mut self, seed: &[u8]) -> Mutant {
        if seed.is_empty() {
            return Mutant {
                class: AttackClass::Truncation,
                checksum_fixed: false,
                bytes: Vec::new(),
            };
        }
        // Half the time cut at a structural boundary (header edge,
        // section edge, checksum start) — those are the cuts a partial
        // transfer actually produces; otherwise cut anywhere.
        let sections = frame_sections(seed);
        let cut = if self.rng.gen_bool(0.5) && !sections.is_empty() {
            let mut boundaries = vec![HEADER_LEN.min(seed.len())];
            boundaries.extend(sections.iter().map(|s| s.end().min(seed.len())));
            boundaries.push(seed.len().saturating_sub(CHECKSUM_LEN));
            boundaries[self.rng.gen_range(0..boundaries.len())]
        } else {
            self.rng.gen_range(0..seed.len())
        };
        let mut bytes = seed[..cut].to_vec();
        // Resealing a truncated body sometimes turns "stream ended
        // early" into "a required section is absent" — both are attacks
        // worth exercising.
        let checksum_fixed = self.rng.gen_bool(0.5) && fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::Truncation,
            checksum_fixed,
            bytes,
        }
    }

    fn bit_flip(&mut self, seed: &[u8]) -> Mutant {
        let mut bytes = seed.to_vec();
        if !bytes.is_empty() {
            let at = self.rng.gen_range(0..bytes.len());
            let bit = self.rng.gen_range(0..8u32);
            bytes[at] ^= 1 << bit;
        }
        // Mostly reseal, so the flip reaches the section parsers; leave
        // a quarter unsealed to keep the checksum gate itself covered.
        let checksum_fixed = self.rng.gen_bool(0.75) && fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::BitFlip,
            checksum_fixed,
            bytes,
        }
    }

    fn section_replay(&mut self, seed: &[u8]) -> Mutant {
        let sections = frame_sections(seed);
        if sections.is_empty() {
            return self.degrade(seed);
        }
        let dup = self.rng.gen_range(0..sections.len());
        let bytes = if is_v2(seed) {
            // v2 sections are not contiguous records; replay the chosen
            // one through the canonical writer instead — honest framing
            // carrying a duplicated tag.
            let mut parts = Vec::with_capacity(sections.len() + 1);
            for (i, s) in sections.iter().enumerate() {
                parts.push((s.tag, seed[s.payload..s.end()].to_vec()));
                if i == dup {
                    parts.push((s.tag, seed[s.payload..s.end()].to_vec()));
                }
            }
            rebuild_v2(seed, parts)
        } else {
            let s = sections[dup];
            let mut bytes = Vec::with_capacity(seed.len() + (s.end() - s.start));
            bytes.extend_from_slice(&seed[..s.end()]);
            bytes.extend_from_slice(&seed[s.start..s.end()]);
            bytes.extend_from_slice(&seed[s.end()..]);
            bytes
        };
        let mut bytes = bytes;
        let checksum_fixed = fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::SectionReplay,
            checksum_fixed,
            bytes,
        }
    }

    fn section_splice(&mut self, seed: &[u8]) -> Mutant {
        let sections = frame_sections(seed);
        if sections.is_empty() {
            return self.degrade(seed);
        }
        // Rebuild the container with one section's payload transplanted
        // into another's frame (or emptied, if there is only one
        // section), keeping every length field honest: the frame stays
        // well-formed while the content lies.
        //
        // When the seed carries the sharded witness pair (map tag 4,
        // offset index tag 6), aim at it half the time: transplanting
        // one over the other is exactly the index/payload skew the
        // `artifact/witness-index` validation exists for, and random
        // section picks would reach it too rarely.
        let witness_pair = || {
            let at = |tag| sections.iter().position(|s| s.tag == tag);
            Some((at(4)?, at(6)?))
        };
        let (dst, src) = match witness_pair() {
            Some((map, idx)) if self.rng.gen_bool(0.5) => {
                if self.rng.gen_bool(0.5) {
                    (idx, map)
                } else {
                    (map, idx)
                }
            }
            _ => (
                self.rng.gen_range(0..sections.len()),
                self.rng.gen_range(0..sections.len()),
            ),
        };
        let donor: &[u8] = if sections.len() > 1 && src != dst {
            &seed[sections[src].payload..sections[src].end()]
        } else {
            &[]
        };
        let mut bytes = if is_v2(seed) {
            let parts = sections
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let payload = if i == dst {
                        donor
                    } else {
                        &seed[s.payload..s.end()]
                    };
                    (s.tag, payload.to_vec())
                })
                .collect();
            rebuild_v2(seed, parts)
        } else {
            let mut bytes = seed[..HEADER_LEN.min(seed.len())].to_vec();
            for (i, s) in sections.iter().enumerate() {
                let payload = if i == dst {
                    donor
                } else {
                    &seed[s.payload..s.end()]
                };
                bytes.extend_from_slice(&seed[s.start..s.start + 4]);
                put_u64(&mut bytes, payload.len() as u64);
                bytes.extend_from_slice(payload);
            }
            bytes.extend_from_slice(&[0u8; CHECKSUM_LEN]);
            bytes
        };
        let checksum_fixed = fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::SectionSplice,
            checksum_fixed,
            bytes,
        }
    }

    fn length_inflation(&mut self, seed: &[u8]) -> Mutant {
        let sections = frame_sections(seed);
        if sections.is_empty() {
            return self.degrade(seed);
        }
        let s = sections[self.rng.gen_range(0..sections.len())];
        let mut bytes = seed.to_vec();
        // Sometimes a plausible off-by-some inflation, sometimes an
        // absurd one aimed at allocation sizing.
        let inflated: u64 = if self.rng.gen_bool(0.5) {
            s.len as u64 + self.rng.gen_range(1..=4096u64)
        } else {
            self.rng.gen_range(u64::from(u32::MAX)..u64::MAX / 2)
        };
        bytes[s.len_at..s.len_at + 8].copy_from_slice(&inflated.to_le_bytes());
        let checksum_fixed = fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::LengthInflation,
            checksum_fixed,
            bytes,
        }
    }

    fn cross_section(&mut self, seed: &[u8]) -> Mutant {
        let sections = frame_sections(seed);
        // Collect every u64-sized slot inside section payloads; count
        // and length fields all live in such slots, so perturbing one
        // makes two sections (or a header and a table) disagree.
        let slots: Vec<usize> = sections
            .iter()
            .flat_map(|s| (s.payload..s.end().saturating_sub(7)).step_by(2))
            .collect();
        if slots.is_empty() {
            return self.degrade(seed);
        }
        let at = slots[self.rng.gen_range(0..slots.len())];
        let mut bytes = seed.to_vec();
        let old = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let delta = self.rng.gen_range(1..=1024u64);
        let new = if self.rng.gen_bool(0.5) {
            old.wrapping_add(delta)
        } else {
            old.wrapping_sub(delta)
        };
        bytes[at..at + 8].copy_from_slice(&new.to_le_bytes());
        let checksum_fixed = fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::CrossSection,
            checksum_fixed,
            bytes,
        }
    }

    /// Fallback when a structure-aware strategy finds no usable frame:
    /// a plain bit flip, honestly labelled as such.
    fn degrade(&mut self, seed: &[u8]) -> Mutant {
        self.bit_flip(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::io::binary::ContainerWriter;

    /// A tiny well-formed v1 container with three sections to mutate.
    fn sample() -> Vec<u8> {
        let mut w = ContainerWriter::new(*b"VFTSPANR", 1);
        w.section(1, &[7u8; 34]);
        w.section(2, &42u64.to_le_bytes());
        w.section(3, &[1, 2, 3, 4, 5]);
        w.finish()
    }

    /// The same three sections in the v2 alignment-padded layout.
    fn sample_v2() -> Vec<u8> {
        let mut w = ContainerWriterV2::new(*b"VFTSPANR", 2, 0);
        w.section(1, vec![7u8; 34]);
        w.section(2, 42u64.to_le_bytes().to_vec());
        w.section(3, vec![1, 2, 3, 4, 5]);
        w.finish()
    }

    #[test]
    fn framing_recovers_all_sections() {
        let bytes = sample();
        let sections = frame_sections(&bytes);
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].len, 34);
        assert_eq!(sections[1].len, 8);
        assert_eq!(sections[2].len, 5);
        assert_eq!(
            sections[2].end(),
            bytes.len() - CHECKSUM_LEN,
            "sections must tile the body exactly"
        );
    }

    #[test]
    fn fix_checksum_reseals() {
        let mut bytes = sample();
        bytes[HEADER_LEN] ^= 0xFF;
        assert!(fix_checksum(&mut bytes));
        let body = bytes.len() - CHECKSUM_LEN;
        let stored = u64::from_le_bytes(bytes[body..].try_into().unwrap());
        assert_eq!(stored, fnv1a64(&bytes[..body]));
    }

    #[test]
    fn framing_recovers_v2_sections_from_the_table() {
        let bytes = sample_v2();
        let sections = frame_sections(&bytes);
        assert_eq!(sections.len(), 3);
        assert_eq!(
            sections.iter().map(|s| s.tag).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        assert_eq!(sections[0].len, 34);
        assert_eq!(sections[1].len, 8);
        assert_eq!(sections[2].len, 5);
        // Table entries sit in the header region; payloads are 8-aligned
        // except possibly the last (nothing follows it to misalign).
        for s in &sections[..2] {
            assert_eq!(s.payload % 8, 0, "payload at {}", s.payload);
        }
        assert_eq!(
            sections[0].payload,
            V2_HEADER_LEN + 3 * V2_SECTION_ENTRY_LEN
        );
        assert_eq!(
            sections[2].end(),
            bytes.len() - CHECKSUM_LEN,
            "last payload must run to the checksum"
        );
    }

    #[test]
    fn fix_checksum_reseals_v2_with_the_word_checksum() {
        let mut bytes = sample_v2();
        let payload = frame_sections(&bytes)[0].payload;
        bytes[payload] ^= 0xFF;
        assert!(fix_checksum(&mut bytes));
        let body = bytes.len() - CHECKSUM_LEN;
        let stored = u64::from_le_bytes(bytes[body..].try_into().unwrap());
        assert_eq!(stored, fnv1a64_words(&bytes[..body]));
        assert_ne!(stored, fnv1a64(&bytes[..body]), "must not seal byte-wise");
    }

    #[test]
    fn every_class_mutates_a_well_formed_v2_container() {
        let seed = sample_v2();
        let mut m = Mutator::new(9);
        for class in AttackClass::ALL {
            let mutant = m.mutate_class(class, &seed);
            assert_eq!(mutant.class, class, "v2 framing present, no degrade");
            assert_ne!(mutant.bytes, seed, "mutant must differ from seed");
        }
    }

    #[test]
    fn equal_seeds_produce_identical_mutant_streams() {
        let seed = sample();
        let run = |s: u64| {
            let mut m = Mutator::new(s);
            (0..64).map(|_| m.mutate(&seed)).collect::<Vec<_>>()
        };
        let (a, b) = (run(11), run(11));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.checksum_fixed, y.checksum_fixed);
            assert_eq!(x.bytes, y.bytes);
        }
        // And a different seed diverges somewhere (not a fixed stream).
        let c = run(12);
        assert!(a.iter().zip(&c).any(|(x, y)| x.bytes != y.bytes));
    }

    #[test]
    fn every_class_mutates_a_well_formed_container() {
        let seed = sample();
        let mut m = Mutator::new(3);
        for class in AttackClass::ALL {
            let mutant = m.mutate_class(class, &seed);
            assert_eq!(mutant.class, class, "framing present, no degrade");
            assert_ne!(mutant.bytes, seed, "mutant must differ from seed");
            assert_eq!(AttackClass::from_name(class.name()), Some(class));
        }
    }

    #[test]
    fn structure_aware_classes_degrade_to_bit_flip_without_framing() {
        let mut m = Mutator::new(5);
        let garbage = vec![0xAB; 10];
        for class in [
            AttackClass::SectionReplay,
            AttackClass::SectionSplice,
            AttackClass::LengthInflation,
            AttackClass::CrossSection,
        ] {
            let mutant = m.mutate_class(class, &garbage);
            assert_eq!(mutant.class, AttackClass::BitFlip);
        }
    }

    #[test]
    fn checksum_fixed_mutants_pass_the_integrity_gate() {
        let seed = sample();
        let mut m = Mutator::new(7);
        let mut fixed_seen = 0;
        for _ in 0..128 {
            let mutant = m.mutate(&seed);
            if !mutant.checksum_fixed || mutant.bytes.len() < HEADER_LEN + CHECKSUM_LEN {
                continue;
            }
            fixed_seen += 1;
            let body = mutant.bytes.len() - CHECKSUM_LEN;
            let stored = u64::from_le_bytes(mutant.bytes[body..].try_into().unwrap());
            assert_eq!(stored, fnv1a64(&mutant.bytes[..body]));
        }
        assert!(fixed_seen > 32, "resealing should be the common case");
    }
}
