//! Structure-aware mutation of `VFTSPANR`/`VFTGRAPH` containers.
//!
//! A naive byte-flipping fuzzer gets stopped at the door: the container
//! verifies its trailing FNV-1a checksum *before* parsing any section,
//! so random corruption almost always lands in the `artifact/bit-flip`
//! bucket and the section parsers never see a hostile byte. The
//! [`Mutator`] therefore understands the container frame — magic,
//! version, `(tag, len, payload)` records, trailing checksum — and
//! reseals most mutants with a recomputed checksum
//! ([`Mutant::checksum_fixed`]) so the mutation reaches the decode
//! logic it is aimed at.
//!
//! Each [`AttackClass`] names a *mutation strategy*, not a decoder
//! outcome: a truncation can surface as `artifact/truncation` or (when
//! it severs a whole section) `artifact/missing-section`; an inflated
//! length field as `artifact/truncation` or `artifact/malformed`. The
//! mapping from class to the set of plausible stable codes is
//! documented in `docs/ARTIFACT_FORMAT.md` §8, and the committed corpus
//! pins observed `(class, code)` pairs by filename.
//!
//! Everything here is deterministic: the same `Mutator` seed and the
//! same seed artifact produce byte-identical mutants, in-process and in
//! CI.

use rand::{rngs::StdRng, Rng, SeedableRng};
use spanner_graph::io::binary::{fnv1a64, put_u64};

/// Byte width of the container header (magic[8] + version u32).
const HEADER_LEN: usize = 12;

/// Byte width of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Byte width of a section's `(tag: u32, len: u64)` record header.
const SECTION_HEADER_LEN: usize = 4 + 8;

/// The mutation strategies the fuzzer applies, one per adversarial
/// capability we defend against. See the taxonomy appendix in
/// `docs/ARTIFACT_FORMAT.md` §8 for the decoder codes each class is
/// expected to surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackClass {
    /// Cut the byte stream short — mid-field, mid-section, or exactly at
    /// a structural boundary (lost trailing bytes in transfer).
    Truncation,
    /// Flip a single bit. Usually resealed with a fresh checksum so the
    /// corruption reaches the section parsers; left unsealed some of the
    /// time to keep the checksum gate itself under test.
    BitFlip,
    /// Duplicate a complete `(tag, len, payload)` section record
    /// (a replayed/spliced-in section from another copy of the file).
    SectionReplay,
    /// Transplant one section's payload into another section's frame,
    /// keeping the frame lengths self-consistent (well-formed container,
    /// hostile content).
    SectionSplice,
    /// Inflate a section's length field beyond the bytes that follow
    /// (the classic allocate-from-attacker-controlled-length probe).
    LengthInflation,
    /// Perturb a count field inside one section so it contradicts
    /// another section (e.g. meta's node count vs the table lengths).
    CrossSection,
}

impl AttackClass {
    /// Every class, in the fixed order used by reports and corpus
    /// generation.
    pub const ALL: [AttackClass; 6] = [
        AttackClass::Truncation,
        AttackClass::BitFlip,
        AttackClass::SectionReplay,
        AttackClass::SectionSplice,
        AttackClass::LengthInflation,
        AttackClass::CrossSection,
    ];

    /// Stable kebab-case name, used in corpus filenames and the
    /// `vft-spanner/fuzz-1` findings artifact.
    pub fn name(self) -> &'static str {
        match self {
            AttackClass::Truncation => "truncation",
            AttackClass::BitFlip => "bit-flip",
            AttackClass::SectionReplay => "section-replay",
            AttackClass::SectionSplice => "section-splice",
            AttackClass::LengthInflation => "length-inflation",
            AttackClass::CrossSection => "cross-section",
        }
    }

    /// Parses a [`name`](Self::name) back into the class.
    pub fn from_name(name: &str) -> Option<AttackClass> {
        AttackClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// One hostile input produced by the [`Mutator`].
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The strategy that produced these bytes. When container framing
    /// could not be recovered from the seed, strategies degrade to
    /// [`AttackClass::BitFlip`] and this field says so.
    pub class: AttackClass,
    /// Whether the trailing checksum was recomputed after mutation, so
    /// the bytes pass the integrity gate and exercise section parsing.
    pub checksum_fixed: bool,
    /// The mutated container bytes.
    pub bytes: Vec<u8>,
}

/// One section located by the lenient frame parser: byte offsets into
/// the original container.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameSection {
    /// Offset of the `tag` u32.
    pub(crate) start: usize,
    /// Offset of the payload (start + SECTION_HEADER_LEN).
    pub(crate) payload: usize,
    /// Payload byte length as claimed by the len field (and verified to
    /// fit, else the parser stops).
    pub(crate) len: usize,
}

impl FrameSection {
    pub(crate) fn end(&self) -> usize {
        self.payload + self.len
    }
}

/// Lenient section-frame recovery: walks `(tag, len, payload)` records
/// between the header and the trailing checksum, stopping (not failing)
/// at the first record that does not fit. Unlike the real parser it
/// tolerates unknown tags and duplicate sections — mutants of mutants
/// must still be mutable. Also used by [`crate::seeds::directed_probes`]
/// to aim byte surgery at a specific section.
pub(crate) fn frame_sections(bytes: &[u8]) -> Vec<FrameSection> {
    let mut sections = Vec::new();
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return sections;
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let mut at = HEADER_LEN;
    while at + SECTION_HEADER_LEN <= body_end {
        let len_bytes: [u8; 8] = bytes[at + 4..at + SECTION_HEADER_LEN].try_into().unwrap();
        let len = u64::from_le_bytes(len_bytes);
        let payload = at + SECTION_HEADER_LEN;
        let Some(end) = (len as usize).checked_add(payload) else {
            break;
        };
        if len > (body_end - payload) as u64 {
            break;
        }
        sections.push(FrameSection {
            start: at,
            payload,
            len: len as usize,
        });
        at = end;
    }
    sections
}

/// Recomputes and rewrites the trailing checksum so the mutant passes
/// the integrity gate. No-op on inputs too short to carry one.
pub fn fix_checksum(bytes: &mut Vec<u8>) -> bool {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return false;
    }
    let body = bytes.len() - CHECKSUM_LEN;
    let sum = fnv1a64(&bytes[..body]);
    bytes.truncate(body);
    put_u64(bytes, sum);
    true
}

/// The seeded structure-aware mutation engine.
///
/// Deterministic by construction: mutants depend only on the seed value
/// and the sequence of calls, never on time, addresses, or iteration
/// order of anything unordered.
pub struct Mutator {
    rng: StdRng,
}

impl Mutator {
    /// Creates a mutator from a seed. Equal seeds ⇒ equal mutant
    /// streams.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Produces one mutant of `seed_bytes`, cycling the attack class
    /// pseudo-randomly.
    pub fn mutate(&mut self, seed_bytes: &[u8]) -> Mutant {
        let class = AttackClass::ALL[self.rng.gen_range(0..AttackClass::ALL.len())];
        self.mutate_class(class, seed_bytes)
    }

    /// Produces one mutant using the given strategy. Strategies that
    /// need recoverable section framing fall back to a plain bit flip
    /// (reported as [`AttackClass::BitFlip`]) when the seed has none.
    pub fn mutate_class(&mut self, class: AttackClass, seed_bytes: &[u8]) -> Mutant {
        match class {
            AttackClass::Truncation => self.truncate(seed_bytes),
            AttackClass::BitFlip => self.bit_flip(seed_bytes),
            AttackClass::SectionReplay => self.section_replay(seed_bytes),
            AttackClass::SectionSplice => self.section_splice(seed_bytes),
            AttackClass::LengthInflation => self.length_inflation(seed_bytes),
            AttackClass::CrossSection => self.cross_section(seed_bytes),
        }
    }

    fn truncate(&mut self, seed: &[u8]) -> Mutant {
        if seed.is_empty() {
            return Mutant {
                class: AttackClass::Truncation,
                checksum_fixed: false,
                bytes: Vec::new(),
            };
        }
        // Half the time cut at a structural boundary (header edge,
        // section edge, checksum start) — those are the cuts a partial
        // transfer actually produces; otherwise cut anywhere.
        let sections = frame_sections(seed);
        let cut = if self.rng.gen_bool(0.5) && !sections.is_empty() {
            let mut boundaries = vec![HEADER_LEN.min(seed.len())];
            boundaries.extend(sections.iter().map(|s| s.end().min(seed.len())));
            boundaries.push(seed.len().saturating_sub(CHECKSUM_LEN));
            boundaries[self.rng.gen_range(0..boundaries.len())]
        } else {
            self.rng.gen_range(0..seed.len())
        };
        let mut bytes = seed[..cut].to_vec();
        // Resealing a truncated body sometimes turns "stream ended
        // early" into "a required section is absent" — both are attacks
        // worth exercising.
        let checksum_fixed = self.rng.gen_bool(0.5) && fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::Truncation,
            checksum_fixed,
            bytes,
        }
    }

    fn bit_flip(&mut self, seed: &[u8]) -> Mutant {
        let mut bytes = seed.to_vec();
        if !bytes.is_empty() {
            let at = self.rng.gen_range(0..bytes.len());
            let bit = self.rng.gen_range(0..8u32);
            bytes[at] ^= 1 << bit;
        }
        // Mostly reseal, so the flip reaches the section parsers; leave
        // a quarter unsealed to keep the checksum gate itself covered.
        let checksum_fixed = self.rng.gen_bool(0.75) && fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::BitFlip,
            checksum_fixed,
            bytes,
        }
    }

    fn section_replay(&mut self, seed: &[u8]) -> Mutant {
        let sections = frame_sections(seed);
        if sections.is_empty() {
            return self.degrade(seed);
        }
        let s = sections[self.rng.gen_range(0..sections.len())];
        let mut bytes = Vec::with_capacity(seed.len() + (s.end() - s.start));
        bytes.extend_from_slice(&seed[..s.end()]);
        bytes.extend_from_slice(&seed[s.start..s.end()]);
        bytes.extend_from_slice(&seed[s.end()..]);
        let checksum_fixed = fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::SectionReplay,
            checksum_fixed,
            bytes,
        }
    }

    fn section_splice(&mut self, seed: &[u8]) -> Mutant {
        let sections = frame_sections(seed);
        if sections.is_empty() {
            return self.degrade(seed);
        }
        // Rebuild the container with one section's payload transplanted
        // into another's frame (or emptied, if there is only one
        // section), keeping every length field honest: the frame stays
        // well-formed while the content lies.
        let dst = self.rng.gen_range(0..sections.len());
        let src = self.rng.gen_range(0..sections.len());
        let donor: &[u8] = if sections.len() > 1 && src != dst {
            &seed[sections[src].payload..sections[src].end()]
        } else {
            &[]
        };
        let mut bytes = seed[..HEADER_LEN.min(seed.len())].to_vec();
        for (i, s) in sections.iter().enumerate() {
            let payload = if i == dst {
                donor
            } else {
                &seed[s.payload..s.end()]
            };
            bytes.extend_from_slice(&seed[s.start..s.start + 4]);
            put_u64(&mut bytes, payload.len() as u64);
            bytes.extend_from_slice(payload);
        }
        bytes.extend_from_slice(&[0u8; CHECKSUM_LEN]);
        let checksum_fixed = fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::SectionSplice,
            checksum_fixed,
            bytes,
        }
    }

    fn length_inflation(&mut self, seed: &[u8]) -> Mutant {
        let sections = frame_sections(seed);
        if sections.is_empty() {
            return self.degrade(seed);
        }
        let s = sections[self.rng.gen_range(0..sections.len())];
        let mut bytes = seed.to_vec();
        // Sometimes a plausible off-by-some inflation, sometimes an
        // absurd one aimed at allocation sizing.
        let inflated: u64 = if self.rng.gen_bool(0.5) {
            s.len as u64 + self.rng.gen_range(1..=4096u64)
        } else {
            self.rng.gen_range(u64::from(u32::MAX)..u64::MAX / 2)
        };
        bytes[s.start + 4..s.start + SECTION_HEADER_LEN].copy_from_slice(&inflated.to_le_bytes());
        let checksum_fixed = fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::LengthInflation,
            checksum_fixed,
            bytes,
        }
    }

    fn cross_section(&mut self, seed: &[u8]) -> Mutant {
        let sections = frame_sections(seed);
        // Collect every u64-sized slot inside section payloads; count
        // and length fields all live in such slots, so perturbing one
        // makes two sections (or a header and a table) disagree.
        let slots: Vec<usize> = sections
            .iter()
            .flat_map(|s| (s.payload..s.end().saturating_sub(7)).step_by(2))
            .collect();
        if slots.is_empty() {
            return self.degrade(seed);
        }
        let at = slots[self.rng.gen_range(0..slots.len())];
        let mut bytes = seed.to_vec();
        let old = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let delta = self.rng.gen_range(1..=1024u64);
        let new = if self.rng.gen_bool(0.5) {
            old.wrapping_add(delta)
        } else {
            old.wrapping_sub(delta)
        };
        bytes[at..at + 8].copy_from_slice(&new.to_le_bytes());
        let checksum_fixed = fix_checksum(&mut bytes);
        Mutant {
            class: AttackClass::CrossSection,
            checksum_fixed,
            bytes,
        }
    }

    /// Fallback when a structure-aware strategy finds no usable frame:
    /// a plain bit flip, honestly labelled as such.
    fn degrade(&mut self, seed: &[u8]) -> Mutant {
        self.bit_flip(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::io::binary::ContainerWriter;

    /// A tiny well-formed container with three sections to mutate.
    fn sample() -> Vec<u8> {
        let mut w = ContainerWriter::new(*b"VFTSPANR", 1);
        w.section(1, &[7u8; 34]);
        w.section(2, &42u64.to_le_bytes());
        w.section(3, &[1, 2, 3, 4, 5]);
        w.finish()
    }

    #[test]
    fn framing_recovers_all_sections() {
        let bytes = sample();
        let sections = frame_sections(&bytes);
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].len, 34);
        assert_eq!(sections[1].len, 8);
        assert_eq!(sections[2].len, 5);
        assert_eq!(
            sections[2].end(),
            bytes.len() - CHECKSUM_LEN,
            "sections must tile the body exactly"
        );
    }

    #[test]
    fn fix_checksum_reseals() {
        let mut bytes = sample();
        bytes[HEADER_LEN] ^= 0xFF;
        assert!(fix_checksum(&mut bytes));
        let body = bytes.len() - CHECKSUM_LEN;
        let stored = u64::from_le_bytes(bytes[body..].try_into().unwrap());
        assert_eq!(stored, fnv1a64(&bytes[..body]));
    }

    #[test]
    fn equal_seeds_produce_identical_mutant_streams() {
        let seed = sample();
        let run = |s: u64| {
            let mut m = Mutator::new(s);
            (0..64).map(|_| m.mutate(&seed)).collect::<Vec<_>>()
        };
        let (a, b) = (run(11), run(11));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.checksum_fixed, y.checksum_fixed);
            assert_eq!(x.bytes, y.bytes);
        }
        // And a different seed diverges somewhere (not a fixed stream).
        let c = run(12);
        assert!(a.iter().zip(&c).any(|(x, y)| x.bytes != y.bytes));
    }

    #[test]
    fn every_class_mutates_a_well_formed_container() {
        let seed = sample();
        let mut m = Mutator::new(3);
        for class in AttackClass::ALL {
            let mutant = m.mutate_class(class, &seed);
            assert_eq!(mutant.class, class, "framing present, no degrade");
            assert_ne!(mutant.bytes, seed, "mutant must differ from seed");
            assert_eq!(AttackClass::from_name(class.name()), Some(class));
        }
    }

    #[test]
    fn structure_aware_classes_degrade_to_bit_flip_without_framing() {
        let mut m = Mutator::new(5);
        let garbage = vec![0xAB; 10];
        for class in [
            AttackClass::SectionReplay,
            AttackClass::SectionSplice,
            AttackClass::LengthInflation,
            AttackClass::CrossSection,
        ] {
            let mutant = m.mutate_class(class, &garbage);
            assert_eq!(mutant.class, AttackClass::BitFlip);
        }
    }

    #[test]
    fn checksum_fixed_mutants_pass_the_integrity_gate() {
        let seed = sample();
        let mut m = Mutator::new(7);
        let mut fixed_seen = 0;
        for _ in 0..128 {
            let mutant = m.mutate(&seed);
            if !mutant.checksum_fixed || mutant.bytes.len() < HEADER_LEN + CHECKSUM_LEN {
                continue;
            }
            fixed_seen += 1;
            let body = mutant.bytes.len() - CHECKSUM_LEN;
            let stored = u64::from_le_bytes(mutant.bytes[body..].try_into().unwrap());
            assert_eq!(stored, fnv1a64(&mutant.bytes[..body]));
        }
        assert!(fixed_seen > 32, "resealing should be the common case");
    }
}
