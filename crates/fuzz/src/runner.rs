//! The fuzz loop: seeds × mutants × contracts, with a findings artifact.
//!
//! [`run`] first proves every seed decodes (the in-runner half of the
//! false-positive guard — a fuzzer whose *seeds* fail would report
//! phantom findings about everything derived from them), then drives
//! the [`Mutator`] round-robin over the seed set and holds each mutant
//! to the decode contracts:
//!
//! * **fail closed** — a panic is a [`FindingKind::Panic`];
//! * **deterministic** — an unstable error signature across
//!   [`DETERMINISM_RUNS`](spanner_harness::corpus::DETERMINISM_RUNS)
//!   decodes is a [`FindingKind::NonDeterminism`];
//! * **canonical acceptance** — accepted bytes that do not re-encode to
//!   themselves are a [`FindingKind::NonCanonical`];
//! * **allocation-bounded** — a single decode allocation above
//!   [`decode_alloc_budget`] is a
//!   [`FindingKind::AllocBudget`] (checked only when the counting
//!   allocator is installed; [`FuzzReport::alloc_checked`] says
//!   whether it was, so a run that silently skipped the check cannot
//!   masquerade as one that passed it).
//!
//! Nothing is capped silently: mutants not executed because the
//! optional time budget expired are counted in
//! [`FuzzReport::skipped_time_budget`] and reported in both the human
//! output and the JSON artifact.
//!
//! The artifact is schema `vft-spanner/fuzz-1` ([`FINDINGS_SCHEMA`]),
//! emitted by [`FuzzReport::to_json`] and validated by
//! [`check_artifact`] — the same emit-then-`--check` pattern as the
//! `BENCH_*.json` perf artifacts.

use crate::alloc::{decode_alloc_budget, measure};
use crate::mutate::{AttackClass, Mutator};
use crate::seeds::{all_seeds, Seed};
use spanner_core::frozen::ARTIFACT_ERROR_CODES;
use spanner_graph::io::binary::BINARY_ERROR_CODES;
use spanner_harness::corpus::{self, decode_outcome};
use spanner_harness::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Schema tag of the findings artifact.
pub const FINDINGS_SCHEMA: &str = "vft-spanner/fuzz-1";

/// Configuration of one fuzz run. Outputs depend only on `iterations`
/// and `seed`; `time_budget` can stop a run early but the cut is always
/// reported, never silent.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// How many mutants to generate and evaluate.
    pub iterations: usize,
    /// Mutator seed: equal seeds ⇒ identical mutants and identical
    /// per-class tallies.
    pub seed: u64,
    /// Optional wall-clock cap; mutants skipped because of it are
    /// counted in [`FuzzReport::skipped_time_budget`].
    pub time_budget: Option<Duration>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iterations: 512,
            seed: 1,
            time_budget: None,
        }
    }
}

/// Which contract a finding violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Decoding panicked (the fail-closed contract).
    Panic,
    /// Repeated decodes disagreed on outcome or error signature.
    NonDeterminism,
    /// Accepted bytes did not re-encode to themselves.
    NonCanonical,
    /// A single decode allocation exceeded the input-proportional
    /// budget.
    AllocBudget,
}

impl FindingKind {
    /// Stable name used in the findings artifact.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::Panic => "panic",
            FindingKind::NonDeterminism => "nondeterminism",
            FindingKind::NonCanonical => "non-canonical",
            FindingKind::AllocBudget => "alloc-budget",
        }
    }
}

/// One contract violation, with the bytes that triggered it (persisted
/// under `fuzz/crashes/` by the `spanner-fuzz` binary).
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated contract.
    pub kind: FindingKind,
    /// The mutation strategy that produced the input.
    pub class: AttackClass,
    /// Human-readable description of the violation.
    pub detail: String,
    /// The triggering input.
    pub bytes: Vec<u8>,
}

/// The outcome of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Mutants generated and evaluated.
    pub executed: usize,
    /// Mutants *not* evaluated because the time budget expired — always
    /// reported, never silently dropped.
    pub skipped_time_budget: usize,
    /// Whether the allocation budget was actually enforced (true only
    /// under the counting allocator, i.e. in the `spanner-fuzz` binary
    /// and the dedicated alloc test).
    pub alloc_checked: bool,
    /// Names of the seeds, all of which decoded cleanly before any
    /// mutation ran.
    pub seeds: Vec<String>,
    /// Tallies: attack class → observed outcome label (stable error
    /// code or `"ok"`) → count.
    pub by_class: BTreeMap<String, BTreeMap<String, usize>>,
    /// Contract violations; empty for as long as the decode contracts
    /// hold.
    pub findings: Vec<Finding>,
    /// Wall-clock of the run, milliseconds (informational; not part of
    /// the determinism contract).
    pub wall_ms: f64,
}

impl FuzzReport {
    /// Whether the run found no contract violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the findings artifact (schema [`FINDINGS_SCHEMA`]).
    pub fn to_json(&self, config: &FuzzConfig) -> JsonValue {
        let by_class = JsonValue::Object(
            self.by_class
                .iter()
                .map(|(class, codes)| {
                    let members = codes
                        .iter()
                        .map(|(code, count)| (code.clone(), json::num(*count as f64)))
                        .collect();
                    (class.clone(), JsonValue::Object(members))
                })
                .collect(),
        );
        let findings = JsonValue::Array(
            self.findings
                .iter()
                .map(|f| {
                    json::obj([
                        ("kind", json::s(f.kind.name())),
                        ("class", json::s(f.class.name())),
                        ("detail", json::s(f.detail.clone())),
                        ("len", json::num(f.bytes.len() as f64)),
                        (
                            "file",
                            json::s(corpus::corpus_file_name(f.class.name(), None, &f.bytes)),
                        ),
                    ])
                })
                .collect(),
        );
        json::obj([
            ("schema", json::s(FINDINGS_SCHEMA)),
            ("iterations", json::num(config.iterations as f64)),
            ("seed", json::num(config.seed as f64)),
            ("executed", json::num(self.executed as f64)),
            (
                "skipped_time_budget",
                json::num(self.skipped_time_budget as f64),
            ),
            ("alloc_checked", JsonValue::Bool(self.alloc_checked)),
            (
                "seeds",
                JsonValue::Array(self.seeds.iter().map(json::s).collect()),
            ),
            ("by_class", by_class),
            ("findings", findings),
            ("wall_ms", json::num(self.wall_ms)),
        ])
    }
}

/// The full set of outcome labels a mutant can be tallied under: every
/// decode-path stable error code, `"ok"`, and the finding kinds (a
/// mutant that violated a contract is tallied under the violation, so
/// Σ by_class = executed stays an invariant even on a failing run).
fn known_labels() -> Vec<&'static str> {
    let mut labels = vec![corpus::OK_LABEL, "panic", "nondeterminism", "non-canonical"];
    labels.extend_from_slice(BINARY_ERROR_CODES);
    labels.extend_from_slice(ARTIFACT_ERROR_CODES);
    labels
}

/// Validates a parsed findings artifact against the `vft-spanner/fuzz-1`
/// schema: tag, required fields, attack-class names, outcome labels
/// within the error taxonomy, and tally consistency
/// (Σ by_class = executed, executed + skipped = iterations).
///
/// # Errors
///
/// A description of the first schema violation found.
pub fn check_artifact(doc: &JsonValue) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != FINDINGS_SCHEMA {
        return Err(format!(
            "schema is {schema:?}, expected {FINDINGS_SCHEMA:?}"
        ));
    }
    let field = |name: &str| -> Result<f64, String> {
        doc.get(name)
            .and_then(JsonValue::as_f64)
            .filter(|x| *x >= 0.0 && x.fract() == 0.0)
            .ok_or(format!("missing or non-integral field {name:?}"))
    };
    let iterations = field("iterations")?;
    let executed = field("executed")?;
    let skipped = field("skipped_time_budget")?;
    field("seed")?;
    if executed + skipped != iterations {
        return Err(format!(
            "tally mismatch: executed {executed} + skipped {skipped} != iterations {iterations}"
        ));
    }
    if !matches!(doc.get("alloc_checked"), Some(JsonValue::Bool(_))) {
        return Err("missing boolean field \"alloc_checked\"".into());
    }
    let seeds = doc
        .get("seeds")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field \"seeds\"")?;
    if seeds.is_empty() || seeds.iter().any(|s| s.as_str().is_none()) {
        return Err("\"seeds\" must be a non-empty array of names".into());
    }
    let labels = known_labels();
    let by_class = match doc.get("by_class") {
        Some(JsonValue::Object(members)) => members,
        _ => return Err("missing object field \"by_class\"".into()),
    };
    let mut tallied = 0.0;
    for (class, codes) in by_class {
        if AttackClass::from_name(class).is_none() {
            return Err(format!("unknown attack class {class:?} in by_class"));
        }
        let codes = match codes {
            JsonValue::Object(members) => members,
            _ => return Err(format!("by_class[{class:?}] must be an object")),
        };
        for (code, count) in codes {
            if !labels.contains(&code.as_str()) {
                return Err(format!(
                    "outcome {code:?} under class {class:?} is outside the error taxonomy"
                ));
            }
            match count.as_f64() {
                Some(x) if x >= 0.0 && x.fract() == 0.0 => tallied += x,
                _ => return Err(format!("by_class[{class:?}][{code:?}] must be a count")),
            }
        }
    }
    if tallied != executed {
        return Err(format!(
            "by_class tallies sum to {tallied}, but executed is {executed}"
        ));
    }
    let findings = doc
        .get("findings")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field \"findings\"")?;
    for finding in findings {
        let kind = finding
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("finding without a kind")?;
        if !["panic", "nondeterminism", "non-canonical", "alloc-budget"].contains(&kind) {
            return Err(format!("unknown finding kind {kind:?}"));
        }
        let class = finding
            .get("class")
            .and_then(JsonValue::as_str)
            .ok_or("finding without a class")?;
        if AttackClass::from_name(class).is_none() {
            return Err(format!("finding with unknown attack class {class:?}"));
        }
        for key in ["detail", "file"] {
            if finding.get(key).and_then(JsonValue::as_str).is_none() {
                return Err(format!("finding without a {key:?} string"));
            }
        }
    }
    doc.get("wall_ms")
        .and_then(JsonValue::as_f64)
        .ok_or("missing number field \"wall_ms\"")?;
    Ok(())
}

/// Classifies a contract-violation message from
/// [`spanner_harness::corpus::decode_outcome`] into a finding kind.
fn classify(why: &str) -> FindingKind {
    if why.starts_with("decode panicked") {
        FindingKind::Panic
    } else if why.starts_with("nondeterministic decode") {
        FindingKind::NonDeterminism
    } else {
        FindingKind::NonCanonical
    }
}

/// Runs the fuzz loop over the built-in [`all_seeds`] set.
///
/// # Errors
///
/// Only for a broken *harness* (a seed that fails to decode — the
/// codec is wrong before any adversary shows up). Contract violations
/// on mutants are findings in the report, not errors.
pub fn run(config: &FuzzConfig) -> Result<FuzzReport, String> {
    let started = Instant::now();
    let seeds: Vec<Seed> = all_seeds();
    let mut report = FuzzReport::default();

    // False-positive guard, runner half: every legitimately-encoded
    // seed must decode before a single hostile byte is generated.
    for seed in &seeds {
        match decode_outcome(&seed.bytes) {
            Ok(corpus::DecodeOutcome::Accepted) => report.seeds.push(seed.name.to_string()),
            Ok(corpus::DecodeOutcome::Rejected(code)) => {
                return Err(format!(
                    "seed {} rejected with {code} — the harness, not an attacker, is broken",
                    seed.name
                ))
            }
            Err(why) => return Err(format!("seed {}: {why}", seed.name)),
        }
    }

    let mut mutator = Mutator::new(config.seed);
    for i in 0..config.iterations {
        if let Some(budget) = config.time_budget {
            if started.elapsed() > budget {
                report.skipped_time_budget = config.iterations - i;
                break;
            }
        }
        let mutant = mutator.mutate(&seeds[i % seeds.len()].bytes);
        let (result, peak) = measure(|| decode_outcome(&mutant.bytes));
        report.executed += 1;
        match result {
            Ok(outcome) => {
                *report
                    .by_class
                    .entry(mutant.class.name().to_string())
                    .or_default()
                    .entry(outcome.label().to_string())
                    .or_insert(0) += 1;
            }
            Err(why) => {
                let kind = classify(&why);
                // The failed mutant still counts toward its class so
                // tallies stay consistent (executed = Σ by_class +
                // findings is NOT an invariant; executed = Σ by_class
                // is, so tally findings under their observed label).
                *report
                    .by_class
                    .entry(mutant.class.name().to_string())
                    .or_default()
                    .entry(kind.name().to_string())
                    .or_insert(0) += 1;
                report.findings.push(Finding {
                    kind,
                    class: mutant.class,
                    detail: why,
                    bytes: mutant.bytes.clone(),
                });
            }
        }
        if let Some(peak) = peak {
            report.alloc_checked = true;
            let budget = decode_alloc_budget(mutant.bytes.len());
            if peak > budget {
                report.findings.push(Finding {
                    kind: FindingKind::AllocBudget,
                    class: mutant.class,
                    detail: format!(
                        "decode of a {}-byte input made a {peak}-byte allocation \
                         (budget {budget})",
                        mutant.bytes.len()
                    ),
                    bytes: mutant.bytes,
                });
            }
        }
    }
    report.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_clean_and_fully_tallied() {
        let config = FuzzConfig {
            iterations: 96,
            seed: 42,
            time_budget: None,
        };
        let report = run(&config).expect("seeds must decode");
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.executed, 96);
        assert_eq!(report.skipped_time_budget, 0);
        let tallied: usize = report.by_class.values().flat_map(|c| c.values()).sum();
        assert_eq!(tallied, report.executed, "no silent drops");
        // Without the counting allocator installed (this test binary),
        // the alloc check must report itself as not run.
        assert!(!report.alloc_checked);
    }

    #[test]
    fn equal_configs_produce_identical_tallies() {
        let config = FuzzConfig {
            iterations: 64,
            seed: 7,
            time_budget: None,
        };
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert_eq!(a.by_class, b.by_class);
        assert_eq!(a.executed, b.executed);
    }

    #[test]
    fn artifact_round_trips_and_checks() {
        let config = FuzzConfig {
            iterations: 32,
            seed: 3,
            time_budget: None,
        };
        let report = run(&config).unwrap();
        let doc = report.to_json(&config);
        let parsed = json::parse(&doc.to_string()).expect("artifact must be valid JSON");
        check_artifact(&parsed).expect("artifact must satisfy its own schema");
    }

    #[test]
    fn check_artifact_rejects_drift() {
        let config = FuzzConfig {
            iterations: 16,
            seed: 5,
            time_budget: None,
        };
        let report = run(&config).unwrap();
        let good = report.to_json(&config);

        let mut wrong_schema = good.clone();
        if let JsonValue::Object(members) = &mut wrong_schema {
            members[0].1 = json::s("vft-spanner/fuzz-0");
        }
        assert!(check_artifact(&wrong_schema).is_err());

        let mut bad_tally = good.clone();
        if let JsonValue::Object(members) = &mut bad_tally {
            for (k, v) in members.iter_mut() {
                if k == "executed" {
                    *v = json::num(9999.0);
                }
            }
        }
        assert!(check_artifact(&bad_tally).is_err());

        let mut alien_code = good;
        if let JsonValue::Object(members) = &mut alien_code {
            for (k, v) in members.iter_mut() {
                if k == "by_class" {
                    *v = JsonValue::Object(vec![(
                        "bit-flip".into(),
                        JsonValue::Object(vec![("artifact/not-a-code".into(), json::num(16.0))]),
                    )]);
                }
            }
        }
        assert!(check_artifact(&alien_code).is_err());
    }

    #[test]
    fn time_budget_skips_are_reported_not_silent() {
        let config = FuzzConfig {
            iterations: 1_000_000,
            seed: 9,
            time_budget: Some(Duration::from_millis(50)),
        };
        let report = run(&config).unwrap();
        assert!(report.executed < config.iterations);
        assert_eq!(
            report.executed + report.skipped_time_budget,
            config.iterations,
            "every non-executed mutant must be accounted for"
        );
    }
}
