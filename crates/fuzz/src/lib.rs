//! `spanner-fuzz` — offline, deterministic, structure-aware fuzzing of
//! the artifact decode path.
//!
//! Since PR 5, `VFTSPANR` artifacts are the unit of deployment: one
//! builder process encodes, thousands of replicas decode bytes they did
//! not produce. That makes [`parse_container`], [`decode_frozen_csr`]
//! and [`FrozenSpanner::decode`] a trust boundary, and this crate is
//! the adversary that patrols it — following the fail-closed
//! adversarial-testing shape (attack classes with stable error codes, a
//! determinism contract, a false-positive guard) the ROADMAP's
//! "adversarial codec hardening" item calls for.
//!
//! The whole subsystem is **offline and deterministic**, mirroring the
//! `vendor/` dependency shims: no libFuzzer/AFL, no network, no wall
//! clock in any decision that affects outputs — just a seeded
//! [`Mutator`] (truncation, bit flips, section splice/replay,
//! length-field inflation, cross-section contradictions, with checksum
//! fixup so mutants reach *past* the FNV gate) driving the decoders
//! under a panic / allocation / time budget. The same seed always
//! produces the same mutants, so every CI finding replays locally.
//!
//! What a run asserts, per mutant (see [`runner`]):
//!
//! * **fail closed** — decoding returns `Ok` or a typed error; any
//!   panic is a finding;
//! * **deterministic** — repeated decodes yield the identical stable
//!   error code and message (the forensic-repeatability contract);
//! * **canonical acceptance** — bytes that decode must re-encode to
//!   exactly themselves (a mutant the codec accepts but would re-emit
//!   differently is a finding);
//! * **allocation-bounded** — no single allocation during decode may
//!   exceed [`alloc::decode_alloc_budget`] of the input length (when
//!   the [`alloc::CountingAlloc`] is installed, as the `spanner-fuzz`
//!   binary and the `alloc_budget` test do);
//! * **no silent caps** — mutants skipped by the time budget are
//!   counted and reported ([`runner::FuzzReport::skipped_time_budget`]),
//!   never silently dropped from coverage.
//!
//! Findings are persisted under `fuzz/crashes/` and interesting inputs
//! under `fuzz/corpus/` using the shared [`spanner_harness::corpus`]
//! naming convention (`<class>__<expected-code>__<hash>.bin`), which
//! tier-1 tests and `spanner-artifact replay` re-verify on every run.
//! The `spanner-fuzz` binary drives everything from the shell and emits
//! a schema-checked `vft-spanner/fuzz-1` findings artifact for CI.
//!
//! [`parse_container`]: spanner_graph::io::binary::parse_container
//! [`decode_frozen_csr`]: spanner_graph::io::binary::decode_frozen_csr
//! [`FrozenSpanner::decode`]: spanner_core::FrozenSpanner::decode
//! [`Mutator`]: mutate::Mutator

#![warn(missing_docs)]
// `alloc` implements a GlobalAlloc wrapper; that is the one unsafe
// surface in the crate (and the workspace's fuzzing story depends on
// it). Everything else stays safe.
#![deny(unsafe_code)]

pub mod alloc;
pub mod mutate;
pub mod runner;
pub mod seeds;

pub use mutate::{AttackClass, Mutant, Mutator};
pub use runner::{FuzzConfig, FuzzReport, FINDINGS_SCHEMA};
