//! Seed artifacts for the fuzzer: small, varied, legitimately-encoded
//! containers the [`Mutator`](crate::mutate::Mutator) corrupts.
//!
//! Structure-aware fuzzing is only as good as its seeds: a mutant of a
//! bare freeze can never exercise the witness-map cross-checks, and a
//! mutant of a vertex-model artifact never walks the edge-model decode
//! arm. So the seed set deliberately spans both container kinds
//! (`VFTSPANR` spanner artifacts, `VFTGRAPH` standalone graphs), both
//! container versions (v1 record framing and the v2 in-place section
//! table), both fault models, budgets f ∈ {0, 1, 2}, with-parent and
//! bare freezes, and empty through moderately-sized graphs — every
//! decode arm has at least one seed whose mutants reach it.
//!
//! Seeds are deterministic (fixed generator seeds, no clocks), so the
//! corpus files derived from them are stable across runs and machines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{greedy_spanner, FtGreedy};
use spanner_faults::FaultModel;
use spanner_graph::io::binary::encode_frozen_csr;
use spanner_graph::{generators, FrozenCsr, Graph};

/// One seed: a short stable name (used in logs and corpus filenames)
/// plus the encoded container bytes.
pub struct Seed {
    /// Stable kebab-case name of the seed construction.
    pub name: &'static str,
    /// The legitimately-encoded container bytes.
    pub bytes: Vec<u8>,
}

fn ft_artifact(g: &Graph, stretch: u64, f: usize, model: FaultModel) -> Vec<u8> {
    FtGreedy::new(g, stretch)
        .faults(f)
        .model(model)
        .run()
        .freeze(g)
        .encode()
}

/// `VFTSPANR` spanner-artifact seeds: both fault models, f ∈ {0, 1, 2},
/// with-parent and bare freezes.
pub fn spanner_seeds() -> Vec<Seed> {
    let mut rng = StdRng::seed_from_u64(1009);
    let geometric = generators::random_geometric(12, 0.6, &mut rng);
    vec![
        Seed {
            name: "complete6-f1-vertex",
            bytes: ft_artifact(&generators::complete(6), 3, 1, FaultModel::Vertex),
        },
        Seed {
            name: "cycle8-f0-vertex",
            bytes: ft_artifact(&generators::cycle(8), 3, 0, FaultModel::Vertex),
        },
        Seed {
            name: "geometric12-f2-edge",
            bytes: ft_artifact(&geometric, 3, 2, FaultModel::Edge),
        },
        Seed {
            name: "grid3x3-f1-vertex",
            bytes: ft_artifact(&generators::grid(3, 3), 5, 1, FaultModel::Vertex),
        },
        Seed {
            // Bare freeze: no parent, no budget, no witnesses — the
            // optional-section decode arms.
            name: "petersen-bare",
            bytes: greedy_spanner(&generators::petersen(), 3).freeze().encode(),
        },
    ]
}

/// `VFTGRAPH` standalone frozen-graph seeds, including the empty graph
/// (zero sections of payload is itself an edge case worth mutating).
pub fn graph_seeds() -> Vec<Seed> {
    let mut rng = StdRng::seed_from_u64(2003);
    let sparse = generators::erdos_renyi(10, 0.3, &mut rng);
    vec![
        Seed {
            name: "petersen-graph",
            bytes: encode_frozen_csr(&FrozenCsr::from_view(&generators::petersen())),
        },
        Seed {
            name: "cycle5-graph",
            bytes: encode_frozen_csr(&FrozenCsr::from_view(&generators::cycle(5))),
        },
        Seed {
            name: "empty-graph",
            bytes: encode_frozen_csr(&FrozenCsr::from_view(&Graph::new(0))),
        },
        Seed {
            name: "erdos10-graph",
            bytes: encode_frozen_csr(&FrozenCsr::from_view(&sparse)),
        },
    ]
}

/// v2 (in-place layout) re-encodings of representative spanner seeds:
/// one with every section present, one bare. Mutants of these reach the
/// v2 envelope gates — section-table bounds, alignment, canonical
/// offsets, padding — that no v1 seed can exercise. Witnesses stay
/// attached: every seed must decode cleanly.
pub fn v2_seeds() -> Vec<Seed> {
    use spanner_core::FrozenSpanner;
    let migrate = |bytes: Vec<u8>| {
        FrozenSpanner::decode(&bytes)
            .expect("own seed bytes decode")
            .to_v2()
            .encode()
    };
    vec![
        Seed {
            name: "complete6-f1-vertex-v2",
            bytes: migrate(ft_artifact(
                &generators::complete(6),
                3,
                1,
                FaultModel::Vertex,
            )),
        },
        Seed {
            name: "petersen-bare-v2",
            bytes: migrate(greedy_spanner(&generators::petersen(), 3).freeze().encode()),
        },
    ]
}

/// Sharded-witness v2 re-encodings: the per-edge offset index (tag 6)
/// plus `FLAG_WITNESSES_SHARDED`. Mutants of these are the only way the
/// random sampler reaches the index-validation gates — offset
/// monotonicity and alignment, index/payload agreement, record padding —
/// so both fault models ride along. Every seed still decodes cleanly.
pub fn sharded_seeds() -> Vec<Seed> {
    use spanner_core::FrozenSpanner;
    let shard = |bytes: Vec<u8>| {
        FrozenSpanner::decode(&bytes)
            .expect("own seed bytes decode")
            .to_v2_sharded()
            .encode()
    };
    let mut rng = StdRng::seed_from_u64(1009);
    let geometric = generators::random_geometric(12, 0.6, &mut rng);
    vec![
        Seed {
            name: "complete6-f1-vertex-v2-sharded",
            bytes: shard(ft_artifact(
                &generators::complete(6),
                3,
                1,
                FaultModel::Vertex,
            )),
        },
        Seed {
            name: "geometric12-f2-edge-v2-sharded",
            bytes: shard(ft_artifact(&geometric, 3, 2, FaultModel::Edge)),
        },
    ]
}

/// All seeds, spanner artifacts first, v2 re-encodings then sharded
/// re-encodings last — the order is part of the determinism contract
/// (mutant streams index into it), which is why each new family was
/// *appended* rather than interleaved.
pub fn all_seeds() -> Vec<Seed> {
    let mut seeds = spanner_seeds();
    seeds.extend(graph_seeds());
    seeds.extend(v2_seeds());
    seeds.extend(sharded_seeds());
    seeds
}

/// One hand-aimed hostile input: a deterministic byte surgery designed
/// to surface a *specific* decoder defect.
pub struct Probe {
    /// The attack class the surgery belongs to (a
    /// [`crate::mutate::AttackClass`] name, used in the corpus file
    /// name).
    pub class: &'static str,
    /// The hostile bytes.
    pub bytes: Vec<u8>,
}

/// Directed probes: where the random mutator *samples* the attack
/// surface, these aim one input at each decoder gate the sampler may
/// miss in a small committed corpus — wrong magic, wrong version,
/// unknown tag, dropped required section, simple-graph violation, raw
/// truncation, unsealed corruption, a v2 payload off the 8-byte grid,
/// and a routing-only (witnesses-detached) artifact. `spanner-fuzz
/// corpus` labels each with its observed stable code and then
/// *requires* the combined corpus to cover the whole decode taxonomy,
/// so a code silently becoming unreachable fails corpus regeneration.
pub fn directed_probes() -> Vec<Probe> {
    use crate::mutate::{fix_checksum, frame_sections};

    // The richest seed: all five VFTSPANR sections present.
    let seed = spanner_seeds().swap_remove(0).bytes;
    let sections = frame_sections(&seed);
    let tag_of = |s: &crate::mutate::FrameSection| s.tag;
    let mut probes = Vec::new();

    // Raw truncation: too short to even carry a header.
    probes.push(Probe {
        class: "truncation",
        bytes: seed[..6].to_vec(),
    });

    // Unsealed corruption: one flipped payload bit, checksum left
    // stale — the integrity gate itself.
    let mut unsealed = seed.clone();
    unsealed[16] ^= 0x01;
    probes.push(Probe {
        class: "bit-flip",
        bytes: unsealed,
    });

    // Wrong magic, resealed so only the magic is at fault.
    let mut magic = seed.clone();
    magic[0] ^= 0xFF;
    fix_checksum(&mut magic);
    probes.push(Probe {
        class: "bit-flip",
        bytes: magic,
    });

    // Unsupported version, resealed.
    let mut version = seed.clone();
    version[8..12].copy_from_slice(&99u32.to_le_bytes());
    fix_checksum(&mut version);
    probes.push(Probe {
        class: "bit-flip",
        bytes: version,
    });

    // Unknown section tag, resealed.
    let mut unknown = seed.clone();
    unknown[12..16].copy_from_slice(&0xBEEFu32.to_le_bytes());
    fix_checksum(&mut unknown);
    probes.push(Probe {
        class: "bit-flip",
        bytes: unknown,
    });

    // A required section dropped: rebuild the container without the
    // spanner adjacency (tag 2), every remaining length still honest.
    let mut dropped = seed[..12].to_vec();
    for s in &sections {
        if tag_of(s) == 2 {
            continue;
        }
        dropped.extend_from_slice(&seed[s.start..s.end()]);
    }
    dropped.extend_from_slice(&[0u8; 8]);
    fix_checksum(&mut dropped);
    probes.push(Probe {
        class: "section-splice",
        bytes: dropped,
    });

    // Simple-graph violation: duplicate an edge in the parent graph.
    // (Self-loops and range violations are caught per-record as
    // `artifact/malformed`; a *parallel edge* is only detectable by the
    // graph structure itself, surfacing as `BinaryError::Graph` —
    // `artifact/graph-invariant`.) Payload layout per §2: node_count
    // u64, edge_count u64, then 16-byte (u: u32, v: u32, w: u64)
    // records.
    if let Some(parent) = sections.iter().find(|s| tag_of(s) == 5) {
        if parent.len >= 16 + 32 {
            let mut duplicated = seed.clone();
            let edges = parent.payload + 16;
            let first: [u8; 16] = duplicated[edges..edges + 16].try_into().unwrap();
            duplicated[edges + 16..edges + 32].copy_from_slice(&first);
            fix_checksum(&mut duplicated);
            probes.push(Probe {
                class: "cross-section",
                bytes: duplicated,
            });
        }
    }

    // v2 misaligned payload: nudge one section offset off the 8-byte
    // grid in the richest seed's v2 re-encoding, resealed (word-wise,
    // via the version-aware `fix_checksum`) so the alignment gate —
    // checked before the canonical-position gate — is what trips:
    // `artifact/misaligned-section`.
    let v2 = v2_seeds().swap_remove(0).bytes;
    let v2_sections = frame_sections(&v2);
    let off_at = v2_sections[1].start + 8;
    let mut misaligned = v2.clone();
    let old = u64::from_le_bytes(misaligned[off_at..off_at + 8].try_into().unwrap());
    misaligned[off_at..off_at + 8].copy_from_slice(&(old + 1).to_le_bytes());
    fix_checksum(&mut misaligned);
    probes.push(Probe {
        class: "bit-flip",
        bytes: misaligned,
    });

    // Routing-only artifact: legitimately built with the witness
    // section detached. The container decodes, but serving witness
    // queries from it refuses with `artifact/witnesses-detached` — the
    // replay harness probes that accessor, and the corpus pins the
    // refusal. Classed as a splice: operationally this is a witness
    // section gone missing relative to what the consumer expected.
    let detached = spanner_core::FrozenSpanner::decode(&seed)
        .expect("own seed bytes decode")
        .detach_witnesses()
        .encode();
    probes.push(Probe {
        class: "section-splice",
        bytes: detached,
    });

    // Sharded witness-index probes: the offset index (tag 6) is pure
    // derived metadata, so every gate below is an index/payload
    // disagreement the random sampler would need a lucky resealed hit
    // to reach — and `artifact/witness-index` coverage must not depend
    // on luck.
    let sharded = spanner_core::FrozenSpanner::decode(&seed)
        .expect("own seed bytes decode")
        .to_v2_sharded()
        .encode();
    let s_sections = frame_sections(&sharded);
    let idx = s_sections
        .iter()
        .find(|s| tag_of(s) == 6)
        .expect("sharded seed carries the witness index");
    let wmap = s_sections
        .iter()
        .find(|s| tag_of(s) == 4)
        .expect("sharded seed carries the witness map");
    let reseal = |mut bytes: Vec<u8>| {
        fix_checksum(&mut bytes);
        bytes
    };
    let bump_u64 = |bytes: &mut [u8], at: usize, delta: u64| {
        let old = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        bytes[at..at + 8].copy_from_slice(&(old.wrapping_add(delta)).to_le_bytes());
    };

    // A record offset nudged off the 8-byte grid (also breaks
    // monotonicity's neighbor — alignment is checked first).
    let mut nudged = sharded.clone();
    bump_u64(&mut nudged, idx.payload + 16, 1);
    probes.push(Probe {
        class: "cross-section",
        bytes: reseal(nudged),
    });

    // The final offset overshoots the witness payload it must close.
    let count =
        u64::from_le_bytes(sharded[idx.payload..idx.payload + 8].try_into().unwrap()) as usize;
    let mut overshoot = sharded.clone();
    bump_u64(&mut overshoot, idx.payload + 8 + 8 * count, 8);
    probes.push(Probe {
        class: "cross-section",
        bytes: reseal(overshoot),
    });

    // Index section present with the sharded header flag cleared — the
    // section/flag bijection, from the section side.
    let mut unflagged = sharded.clone();
    unflagged[12..16].copy_from_slice(&0u32.to_le_bytes());
    probes.push(Probe {
        class: "section-splice",
        bytes: reseal(unflagged),
    });

    // Record 0's length claim inflated past its indexed extent
    // (record layout: model u8 at +8, len u64 at +9, after the count
    // header) — the per-record id list now runs off the slice the
    // index brackets.
    let mut inflated = sharded.clone();
    bump_u64(&mut inflated, wmap.payload + 9, 2);
    probes.push(Probe {
        class: "length-inflation",
        bytes: reseal(inflated),
    });
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_harness::corpus::{decode_outcome, DecodeOutcome};

    #[test]
    fn every_seed_decodes_cleanly_and_deterministically() {
        let seeds = all_seeds();
        assert!(
            seeds.len() >= 13,
            "v1, graph, v2, and sharded seeds must all be present"
        );
        for seed in &seeds {
            let outcome = decode_outcome(&seed.bytes)
                .unwrap_or_else(|why| panic!("seed {}: {why}", seed.name));
            assert_eq!(
                outcome,
                DecodeOutcome::Accepted,
                "seed {} must decode",
                seed.name
            );
        }
    }

    #[test]
    fn seeds_are_reproducible() {
        let a = all_seeds();
        let b = all_seeds();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.bytes, y.bytes, "seed {} must be deterministic", x.name);
        }
    }
}
