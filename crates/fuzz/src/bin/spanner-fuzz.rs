//! `spanner-fuzz` — drive the offline adversarial fuzzer from the shell.
//!
//! Usage:
//!
//! ```text
//! spanner-fuzz run [--iterations N] [--seed S] [--time-budget-ms T]
//!                  [--out PATH] [--crashes DIR]
//! spanner-fuzz corpus --out DIR [--seed S] [--per-class N]
//! spanner-fuzz replay DIR...
//! spanner-fuzz --check PATH
//! ```
//!
//! * `run` executes the fuzz loop (`spanner_fuzz::runner::run`) under
//!   the counting allocator, prints the per-class outcome table plus
//!   the time-budget skip count (never silent), writes any finding's
//!   bytes to the crashes directory, and emits the schema-checked
//!   `vft-spanner/fuzz-1` findings artifact. Non-zero exit on any
//!   finding — this is the CI `fuzz-smoke` gate.
//! * `corpus` regenerates the committed regression corpus: the
//!   legitimate seeds (named `seed__ok__<hash>.bin`) plus labeled
//!   mutants per attack class, each named with the stable error code
//!   the decoder was observed to return, so replay fails the moment
//!   the taxonomy drifts under the corpus.
//! * `replay` re-decodes every entry of one or more corpus directories
//!   under the full contract (fail-closed, deterministic, canonical)
//!   and verifies each file's outcome against its name.
//! * `--check` validates an emitted findings artifact against the
//!   `vft-spanner/fuzz-1` schema, same pattern as `perfbench --check`.

use spanner_fuzz::alloc::CountingAlloc;
use spanner_fuzz::runner::{self, check_artifact, FuzzConfig};
use spanner_fuzz::seeds::all_seeds;
use spanner_fuzz::{AttackClass, Mutator};
use spanner_harness::cli::{self, Parsed};
use spanner_harness::corpus::{self, decode_outcome, DecodeOutcome};
use spanner_harness::json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// The allocation-budget contract is only measurable under the counting
/// allocator; this binary installs it so `run` reports
/// `alloc_checked: true`.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const USAGE: &str = "usage: spanner-fuzz run [--iterations N] [--seed S] [--time-budget-ms T]
                        [--out PATH] [--crashes DIR]
       spanner-fuzz corpus --out DIR [--seed S] [--per-class N]
       spanner-fuzz replay DIR...
       spanner-fuzz --check PATH";

struct RunArgs {
    config: FuzzConfig,
    out: Option<PathBuf>,
    crashes: Option<PathBuf>,
}

struct CorpusArgs {
    out: PathBuf,
    seed: u64,
    per_class: usize,
}

enum Command {
    Run(RunArgs),
    Corpus(CorpusArgs),
    Replay(Vec<PathBuf>),
    Check(PathBuf),
}

fn parse_args() -> Result<Parsed<Command>, String> {
    let mut it = std::env::args().skip(1);
    let sub = match it.next() {
        None => return Err("missing subcommand (run, corpus, replay, or --check)".into()),
        Some(s) if s == "--help" || s == "-h" => return Ok(Parsed::Help),
        Some(s) => s,
    };
    match sub.as_str() {
        "run" => parse_run(&mut it),
        "corpus" => parse_corpus(&mut it),
        "replay" => {
            let dirs: Vec<PathBuf> = it.by_ref().map(PathBuf::from).collect();
            if dirs.iter().any(|d| d.as_os_str() == "--help") {
                return Ok(Parsed::Help);
            }
            if dirs.is_empty() {
                return Err("replay needs at least one corpus directory".into());
            }
            Ok(Parsed::Run(Command::Replay(dirs)))
        }
        "--check" => {
            let path = cli::value_for(&mut it, "--check").map(PathBuf::from)?;
            Ok(Parsed::Run(Command::Check(path)))
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn parse_run(it: &mut impl Iterator<Item = String>) -> Result<Parsed<Command>, String> {
    let mut config = FuzzConfig::default();
    let mut out = None;
    let mut crashes = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iterations" => config.iterations = cli::parsed_value(it, "--iterations")?,
            "--seed" => config.seed = cli::parsed_value(it, "--seed")?,
            "--time-budget-ms" => {
                let ms: u64 = cli::parsed_value(it, "--time-budget-ms")?;
                config.time_budget = Some(Duration::from_millis(ms));
            }
            "--out" => out = Some(PathBuf::from(cli::value_for(it, "--out")?)),
            "--crashes" => crashes = Some(PathBuf::from(cli::value_for(it, "--crashes")?)),
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if config.iterations == 0 {
        return Err("--iterations must be positive".into());
    }
    Ok(Parsed::Run(Command::Run(RunArgs {
        config,
        out,
        crashes,
    })))
}

fn parse_corpus(it: &mut impl Iterator<Item = String>) -> Result<Parsed<Command>, String> {
    let mut out = None;
    let mut seed = 1u64;
    let mut per_class = 4usize;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(cli::value_for(it, "--out")?)),
            "--seed" => seed = cli::parsed_value(it, "--seed")?,
            "--per-class" => per_class = cli::parsed_value(it, "--per-class")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let out = out.ok_or("corpus needs --out DIR")?;
    if per_class == 0 {
        return Err("--per-class must be positive".into());
    }
    Ok(Parsed::Run(Command::Corpus(CorpusArgs {
        out,
        seed,
        per_class,
    })))
}

fn run_fuzz(args: RunArgs) -> Result<(), String> {
    let report = runner::run(&args.config)?;
    println!(
        "fuzz: {} mutants over {} seeds, {:.0} ms (seed {})",
        report.executed,
        report.seeds.len(),
        report.wall_ms,
        args.config.seed
    );
    println!(
        "alloc budget: {}",
        if report.alloc_checked {
            "enforced (counting allocator installed)"
        } else {
            "NOT CHECKED"
        }
    );
    for (class, codes) in &report.by_class {
        for (code, count) in codes {
            println!("  {class:<18} {code:<26} {count:>6}");
        }
    }
    // No silent caps: the skip count is printed even when zero.
    println!(
        "skipped by time budget: {} of {}",
        report.skipped_time_budget, args.config.iterations
    );

    if let Some(dir) = &args.crashes {
        if !report.findings.is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            for finding in &report.findings {
                let name = corpus::corpus_file_name(finding.class.name(), None, &finding.bytes);
                let path = dir.join(&name);
                std::fs::write(&path, &finding.bytes)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!("wrote crash input {}", path.display());
            }
        }
    }

    let doc = report.to_json(&args.config);
    // The emitter validates its own artifact before anything consumes
    // it — the same self-check discipline as the perf benches.
    check_artifact(&doc).map_err(|e| format!("internal error: emitted a bad artifact: {e}"))?;
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote findings artifact {}", path.display());
    }

    if !report.is_clean() {
        for finding in &report.findings {
            eprintln!(
                "FINDING [{}] class {}: {}",
                finding.kind.name(),
                finding.class.name(),
                finding.detail
            );
        }
        return Err(format!(
            "{} contract violation(s) found",
            report.findings.len()
        ));
    }
    println!("no findings: fail-closed, deterministic, canonical, allocation-bounded");
    Ok(())
}

fn run_corpus(args: CorpusArgs) -> Result<(), String> {
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    let seeds = all_seeds();
    let mut mutator = Mutator::new(args.seed);
    let mut written = 0usize;
    let mut covered: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut label_and_write = |class: &str, bytes: &[u8]| -> Result<(), String> {
        let outcome = decode_outcome(bytes)
            .map_err(|why| format!("corpus input violated a decode contract: {why}"))?;
        covered.insert(outcome.label().to_string());
        let expected = match outcome {
            DecodeOutcome::Accepted => None,
            DecodeOutcome::Rejected(code) => Some(code),
        };
        let path = args
            .out
            .join(corpus::corpus_file_name(class, expected, bytes));
        std::fs::write(&path, bytes)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written += 1;
        Ok(())
    };

    // Legitimate inputs are corpus entries too: replay proves they keep
    // decoding (the committed half of the false-positive guard).
    for seed in &seeds {
        label_and_write("seed", &seed.bytes)?;
    }
    // Sampled mutants per class, labeled with their observed outcome.
    for class in AttackClass::ALL {
        let mut kept = 0usize;
        let mut attempts = 0usize;
        // Degraded mutants (no recoverable framing) belong to the class
        // they actually are, so they don't count toward this one.
        while kept < args.per_class && attempts < args.per_class * 64 {
            let seed = &seeds[attempts % seeds.len()];
            attempts += 1;
            let mutant = mutator.mutate_class(class, &seed.bytes);
            if mutant.class != class {
                continue;
            }
            label_and_write(class.name(), &mutant.bytes)?;
            kept += 1;
        }
        if kept < args.per_class {
            return Err(format!(
                "class {} produced only {kept} of {} labeled mutants",
                class.name(),
                args.per_class
            ));
        }
    }
    // Directed probes: one input aimed at each decoder gate random
    // sampling may miss in a corpus this small.
    for probe in spanner_fuzz::seeds::directed_probes() {
        label_and_write(probe.class, &probe.bytes)?;
    }

    // The corpus is a regression gate on the taxonomy: every decode
    // code must be exercised, or regeneration fails loudly.
    let mut missing: Vec<&str> = spanner_graph::io::binary::BINARY_ERROR_CODES
        .iter()
        .chain(spanner_core::frozen::ARTIFACT_ERROR_CODES)
        .chain(&[corpus::OK_LABEL])
        .filter(|code| !covered.contains(**code))
        .copied()
        .collect();
    missing.sort_unstable();
    if !missing.is_empty() {
        return Err(format!(
            "corpus does not exercise the full decode taxonomy; missing: {}",
            missing.join(", ")
        ));
    }
    println!(
        "wrote {written} corpus entries to {} covering all {} decode outcomes",
        args.out.display(),
        covered.len()
    );
    Ok(())
}

fn run_replay(dirs: Vec<PathBuf>) -> Result<(), String> {
    let mut clean = true;
    for dir in &dirs {
        let report = corpus::replay_dir(dir, true)?;
        println!("{}: {} entries", dir.display(), report.files);
        for line in report.count_lines() {
            println!("  {line}");
        }
        for mismatch in &report.mismatches {
            eprintln!("MISMATCH {}: {mismatch}", dir.display());
        }
        for failure in &report.failures {
            eprintln!("CONTRACT {}: {failure}", dir.display());
        }
        clean &= report.is_clean();
    }
    if !clean {
        return Err("corpus replay found mismatches or contract violations".into());
    }
    println!("replay clean: every entry matched its expected outcome");
    Ok(())
}

fn run_check(path: PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    check_artifact(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "{}: valid {} artifact",
        path.display(),
        runner::FINDINGS_SCHEMA
    );
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("spanner-fuzz", USAGE, parse_args, |command| match command {
        Command::Run(args) => run_fuzz(args),
        Command::Corpus(args) => run_corpus(args),
        Command::Replay(dirs) => run_replay(dirs),
        Command::Check(path) => run_check(path),
    })
}
