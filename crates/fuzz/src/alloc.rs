//! A counting global allocator: the measurement half of the decode
//! allocation budget.
//!
//! The decoders promise input-proportional allocations (every count is
//! validated against the bytes actually present before it sizes a
//! buffer — `ByteReader::count`, the node-count bound). A promise like
//! that rots silently unless something *measures* it, so the
//! `spanner-fuzz` binary and the `alloc_budget` test install
//! [`CountingAlloc`] as their `#[global_allocator]` and wrap each
//! decode in [`measure`], which reports the largest single allocation
//! the decode requested. The fuzz runner then fails any mutant whose
//! peak exceeds [`decode_alloc_budget`] for its input length.
//!
//! The tracker is a pair of process-global atomics (no thread-locals:
//! TLS access from inside a `GlobalAlloc` can recurse during thread
//! teardown). That makes [`measure`] accurate only while no *other*
//! thread allocates concurrently — exactly the single-threaded shape of
//! the fuzz loop and the dedicated single-`#[test]` binaries that use
//! it. In binaries that never install the allocator, [`measure`]
//! reports `None` and callers skip the budget check rather than
//! asserting on garbage.

// The one unsafe surface of the crate (see lib.rs): forwarding
// GlobalAlloc to System while recording sizes.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Whether any [`CountingAlloc`] call has ever run in this process —
/// i.e. whether the binary actually installed it as the global
/// allocator. (Reaching `main` without allocating is not a thing in
/// practice; argument handling alone allocates.)
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Whether a [`measure`] window is open.
static WATCHING: AtomicBool = AtomicBool::new(false);

/// Largest single allocation requested inside the open window.
static PEAK_SINGLE: AtomicUsize = AtomicUsize::new(0);

/// A `#[global_allocator]` that forwards to [`System`] and records the
/// largest single allocation requested inside a [`measure`] window.
pub struct CountingAlloc;

fn record(size: usize) {
    INSTALLED.store(true, Ordering::Relaxed);
    if WATCHING.load(Ordering::Relaxed) {
        PEAK_SINGLE.fetch_max(size, Ordering::Relaxed);
    }
}

// SAFETY: pure pass-through to `System` for every method; the atomics
// never allocate, so there is no recursion into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Runs `f` and reports the largest single allocation it requested, or
/// `None` when [`CountingAlloc`] is not this process's global allocator
/// (so callers can skip, rather than fake, the budget check).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Option<usize>) {
    if !INSTALLED.load(Ordering::Relaxed) {
        return (f(), None);
    }
    PEAK_SINGLE.store(0, Ordering::Relaxed);
    WATCHING.store(true, Ordering::Relaxed);
    let value = f();
    WATCHING.store(false, Ordering::Relaxed);
    (value, Some(PEAK_SINGLE.load(Ordering::Relaxed)))
}

/// The decode allocation budget for an `input_len`-byte input: the
/// largest single allocation a decode may request.
///
/// The bound mirrors the decoder's own documented proportionality
/// guarantee (`docs/ARTIFACT_FORMAT.md` §2): counts are validated
/// against bytes present (≤ 64 in-memory bytes per input byte covers
/// the widest expansion, a 16-byte edge record becoming adjacency slots
/// plus translation entries), and node counts enjoy a floor of 2^16
/// regardless of payload, whose adjacency headers the constant term
/// covers. A regression that sizes an allocation from an
/// attacker-controlled field (the 16 GiB inverse-table class of bug)
/// lands orders of magnitude above this line.
pub fn decode_alloc_budget(input_len: usize) -> usize {
    64 * input_len + (1 << 22)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_monotone_and_covers_the_node_floor() {
        assert!(decode_alloc_budget(0) >= (1 << 22));
        assert!(decode_alloc_budget(100) < decode_alloc_budget(10_000));
        // The floor: a 50k-isolated-vertex artifact is ~36 bytes of
        // payload but allocates ~24 bytes per node of adjacency
        // headers; the constant term must absorb that.
        assert!(decode_alloc_budget(64) > 50_000 * 24);
    }

    #[test]
    fn measure_without_installation_reports_none() {
        // This test binary does not install CountingAlloc, so the
        // tracker must say so instead of reporting 0.
        let (value, peak) = measure(|| vec![0u8; 4096].len());
        assert_eq!(value, 4096);
        assert_eq!(peak, None);
    }
}
