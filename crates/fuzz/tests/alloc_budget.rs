//! Decode allocations are bounded by the input, for *arbitrary* inputs.
//!
//! The decoder's proportionality guard (counts validated against bytes
//! present before any buffer is sized — `docs/ARTIFACT_FORMAT.md` §2)
//! is measured here, not assumed: this binary installs the counting
//! allocator and property-tests that decoding arbitrary bytes — raw,
//! and resealed with a valid checksum so they reach past the integrity
//! gate — never panics and never requests a single allocation above
//! [`decode_alloc_budget`].
//!
//! Deliberately a single `#[test]`: the allocation tracker is
//! process-global, so this binary keeps exactly one measuring thread.

use proptest::prelude::*;
use spanner_fuzz::alloc::{decode_alloc_budget, measure, CountingAlloc};
use spanner_fuzz::mutate::fix_checksum;
use spanner_harness::corpus::decode_outcome;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Both container magics, so arbitrary tails exercise both decoders.
const MAGICS: [&[u8; 8]; 2] = [b"VFTSPANR", b"VFTGRAPH"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decode_never_panics_and_never_overallocates(
        tail in proptest::collection::vec(any::<u8>(), 0..2048),
        magic_pick in 0..3usize,
    ) {
        // Raw garbage, magic-prefixed garbage, and resealed
        // magic-prefixed garbage (which passes the checksum gate and
        // reaches the section parsers with attacker-controlled
        // lengths).
        let mut inputs: Vec<Vec<u8>> = vec![tail.clone()];
        if magic_pick < 2 {
            let mut framed = MAGICS[magic_pick].to_vec();
            framed.extend_from_slice(&1u32.to_le_bytes());
            framed.extend_from_slice(&tail);
            let mut sealed = framed.clone();
            if fix_checksum(&mut sealed) {
                inputs.push(sealed);
            }
            inputs.push(framed);
        }
        for bytes in &inputs {
            let (outcome, peak) = measure(|| decode_outcome(bytes));
            if let Err(why) = outcome {
                return Err(TestCaseError::fail(format!(
                    "decode contract violated on {} bytes: {why}",
                    bytes.len()
                )));
            }
            let peak = peak.expect("counting allocator is installed in this binary");
            let budget = decode_alloc_budget(bytes.len());
            prop_assert!(
                peak <= budget,
                "decode of {} bytes made a {peak}-byte allocation (budget {budget})",
                bytes.len()
            );
        }
    }
}
