//! The false-positive guard: hardening must not reject legitimate work.
//!
//! A fail-closed decoder that starts failing *closed on honest input*
//! is a different bug with the same severity. This test encodes 50+
//! legitimately-built artifacts — across graph families, both fault
//! models, budgets f ∈ {0, 1, 2} — and requires every one to decode,
//! re-encode byte-identically (canonical acceptance from the honest
//! side), and serve epoch'd route batches bit-identically to the
//! original in-memory construction.

use spanner_core::routing::{Route, RouteError};
use spanner_core::{EpochServer, FrozenSpanner, FtGreedy};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{generators, Graph, NodeId};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn families() -> Vec<(String, Graph)> {
    let mut graphs = vec![
        ("complete6".to_string(), generators::complete(6)),
        ("complete8".to_string(), generators::complete(8)),
        ("cycle9".to_string(), generators::cycle(9)),
        ("grid3x4".to_string(), generators::grid(3, 4)),
        ("petersen".to_string(), generators::petersen()),
    ];
    for seed in [11u64, 12, 13] {
        let mut rng = StdRng::seed_from_u64(seed);
        graphs.push((
            format!("geometric-{seed}"),
            generators::random_geometric(10, 0.6, &mut rng),
        ));
    }
    let mut rng = StdRng::seed_from_u64(21);
    graphs.push((
        "erdos10".to_string(),
        generators::erdos_renyi(10, 0.4, &mut rng),
    ));
    graphs
}

fn batch(n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
        .take(12)
        .collect()
}

#[test]
fn legitimate_artifacts_decode_and_serve_bit_identically() {
    let mut checked = 0usize;
    for (name, g) in families() {
        for model in [FaultModel::Vertex, FaultModel::Edge] {
            for f in [0usize, 1, 2] {
                let built = FtGreedy::new(&g, 3).faults(f).model(model).run().freeze(&g);
                let bytes = built.encode();
                let decoded = FrozenSpanner::decode(&bytes).unwrap_or_else(|e| {
                    panic!("{name} ({model}, f={f}): legitimate artifact rejected: {e}")
                });
                assert_eq!(
                    decoded.encode(),
                    bytes,
                    "{name} ({model}, f={f}): decode→encode is not the identity"
                );

                // Serving bit-identity: the decoded artifact must be
                // indistinguishable from the original construction,
                // fault-free and under a fault.
                let from_memory = EpochServer::new(Arc::new(built));
                let from_bytes = EpochServer::new(Arc::new(decoded));
                let pairs = batch(g.node_count());
                for faults in [
                    FaultSet::vertices([]),
                    FaultSet::vertices([NodeId::new(g.node_count() - 1)]),
                ] {
                    let want: Vec<Result<Route, RouteError>> =
                        from_memory.epoch(&faults).route_batch(&pairs);
                    let got = from_bytes.epoch(&faults).route_batch(&pairs);
                    assert_eq!(
                        got, want,
                        "{name} ({model}, f={f}): decoded artifact served differently"
                    );
                }
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 50,
        "only {checked} artifacts checked, need >= 50"
    );
}
