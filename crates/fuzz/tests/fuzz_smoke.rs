//! End-to-end smoke of the `spanner-fuzz` binary — the same surface the
//! CI `fuzz-smoke` job drives, pinned here so a broken gate cannot
//! reach CI green.
//!
//! Covers: a clean fixed-iteration run emitting a schema-valid
//! `vft-spanner/fuzz-1` artifact, run-to-run determinism of the
//! per-class tallies (same seed ⇒ identical `by_class`), loud
//! reporting of time-budget skips, replay of the committed corpus
//! through the binary, and the CLI error contract.

use spanner_harness::json::{self, JsonValue};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_spanner-fuzz")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spanner-fuzz must spawn")
}

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(rel)
}

fn artifact_for(seed: &str, out: &Path) -> JsonValue {
    let out_str = out.to_str().unwrap();
    let result = run(&[
        "run",
        "--iterations",
        "200",
        "--seed",
        seed,
        "--out",
        out_str,
    ]);
    assert!(
        result.status.success(),
        "clean run must exit 0\nstderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    // No silent caps: the skip count is printed even when zero.
    assert!(
        stdout.contains("skipped by time budget: 0 of 200"),
        "skip count missing from output:\n{stdout}"
    );
    json::parse(&std::fs::read_to_string(out).expect("artifact written"))
        .expect("artifact must be valid JSON")
}

#[test]
fn clean_run_emits_a_checkable_artifact_and_is_deterministic() {
    let dir = std::env::temp_dir().join(format!("fuzz-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let a = artifact_for("7", &dir.join("a.json"));
    let b = artifact_for("7", &dir.join("b.json"));

    // `--check` accepts what `run` emitted (the CI handshake).
    let checked = run(&["--check", dir.join("a.json").to_str().unwrap()]);
    assert!(checked.status.success());

    // Same seed ⇒ byte-identical tallies; wall_ms is the only field
    // allowed to differ.
    assert_eq!(
        a.get("by_class"),
        b.get("by_class"),
        "per-class tallies must be deterministic for a fixed seed"
    );
    assert_eq!(a.get("executed"), b.get("executed"));
    assert_eq!(a.get("findings"), b.get("findings"));
    assert_eq!(
        a.get("findings")
            .and_then(JsonValue::as_array)
            .map(<[_]>::len),
        Some(0),
        "smoke run must be finding-free"
    );
    // The binary installs the counting allocator, so the alloc budget
    // must actually have been enforced, not skipped.
    assert_eq!(a.get("alloc_checked"), Some(&JsonValue::Bool(true)));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_of_the_committed_corpus_exits_zero() {
    let result = run(&["replay", repo_path("fuzz/corpus").to_str().unwrap()]);
    assert!(
        result.status.success(),
        "committed corpus must replay clean\nstderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("replay clean"));
}

#[test]
fn replay_fails_on_a_mislabeled_entry() {
    let dir = std::env::temp_dir().join(format!("fuzz-mislabel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A name promising artifact/bad-magic over bytes that are pure
    // truncation garbage: replay must catch the lie and exit non-zero.
    std::fs::write(
        dir.join("bit-flip__artifact.bad-magic__0000000000000000.bin"),
        b"tiny",
    )
    .unwrap();
    let result = run(&["replay", dir.to_str().unwrap()]);
    assert!(
        !result.status.success(),
        "mislabeled corpus must fail replay"
    );
    assert!(String::from_utf8_lossy(&result.stderr).contains("MISMATCH"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_contract_help_and_errors() {
    let help = run(&["--help"]);
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("usage: spanner-fuzz"));

    for bad in [
        vec!["frobnicate"],
        vec!["run", "--iterations", "0"],
        vec!["run", "--iterations", "nope"],
        vec!["corpus"],
        vec!["replay"],
        vec!["--check", "/definitely/not/a/file.json"],
    ] {
        let result = run(&bad);
        assert!(!result.status.success(), "{bad:?} must fail");
        assert!(
            String::from_utf8_lossy(&result.stderr).contains("spanner-fuzz:"),
            "{bad:?} must report through the bin-name stderr contract"
        );
    }
}
