//! Tier-1 replay of the committed regression corpus.
//!
//! `fuzz/corpus/` is the fuzzer's externalized memory: every entry's
//! file name records the outcome the decoder produced when the entry
//! was committed. Replaying on every test run makes three guarantees
//! at once — hostile inputs keep failing *closed* with the *same*
//! stable code (the taxonomy cannot drift silently), legitimate seeds
//! keep decoding (the false-positive guard's committed half), and
//! `fuzz/crashes/` stays empty-or-clean (a committed crash input that
//! regresses again fails here before CI's fuzz-smoke job even runs).

use spanner_harness::corpus::{replay_dir, OK_LABEL};
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(rel)
}

#[test]
fn committed_corpus_replays_clean_and_covers_the_taxonomy() {
    let report = replay_dir(&repo_path("fuzz/corpus"), true).expect("corpus must be readable");
    assert!(
        report.is_clean(),
        "corpus replay mismatches {:?} / failures {:?}",
        report.mismatches,
        report.failures
    );
    assert!(
        report.files >= 30,
        "corpus shrank to {} entries",
        report.files
    );

    // The corpus is a regression gate on the whole decode taxonomy:
    // every decode-path code must be exercised, plus accepted inputs.
    let mut want: Vec<&str> = spanner_graph::io::binary::BINARY_ERROR_CODES.to_vec();
    want.extend_from_slice(spanner_core::frozen::ARTIFACT_ERROR_CODES);
    want.push(OK_LABEL);
    for code in want {
        assert!(
            report.by_code.get(code).is_some_and(|&n| n > 0),
            "no corpus entry exercises {code}; regenerate with `spanner-fuzz corpus`"
        );
    }
}

#[test]
fn committed_crash_corpus_is_clean() {
    // Empty (or absent) is the healthy state; any committed crash input
    // must stay fixed forever.
    let report =
        replay_dir(&repo_path("fuzz/crashes"), false).expect("crash corpus must be readable");
    assert!(
        report.is_clean(),
        "a committed crash input regressed: {:?} / {:?}",
        report.mismatches,
        report.failures
    );
}
