//! # vft-spanner
//!
//! Vertex/edge **fault tolerant graph spanners** via the optimal greedy
//! algorithm — a complete Rust implementation of
//! *"A Trivial Yet Optimal Solution to Vertex Fault Tolerant Spanners"*
//! (Greg Bodwin & Shyamal Patel, PODC 2019, arXiv:1812.05778).
//!
//! An `f`-fault-tolerant `k`-spanner of a graph `G` is a subgraph `H` such
//! that after **any** `f` vertex (or edge) failures, distances in the
//! survivor `H ∖ F` are within a factor `k` of distances in `G ∖ F`. The
//! paper shows the obvious greedy algorithm builds one of optimal size
//! `O(f² · b(n/f, k+1))` (= `O(n^{1+1/κ} f^{1−1/κ})` at stretch `2κ−1`
//! under the Moore bounds).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] ([`spanner_graph`]) — the graph substrate: weighted graphs,
//!   fault masks, bounded fault-masked Dijkstra, girth, generators;
//! * [`faults`] ([`spanner_faults`]) — the fault model and the exact
//!   fault-set search oracles (branching / exhaustive / hitting-set);
//! * [`core`] ([`spanner_core`]) — the paper: FT-greedy (Algorithm 1),
//!   blocking sets (Lemma 3), peeling (Lemma 4), verification, baselines;
//! * [`extremal`] ([`spanner_extremal`]) — Moore-bound curves, projective
//!   planes, high-girth generators, the lower-bound blow-up family.
//!
//! # Quickstart
//!
//! ```
//! use vft_spanner::prelude::*;
//!
//! // A random network.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let g = generators::erdos_renyi(40, 0.3, &mut rng);
//!
//! // A 1-vertex-fault tolerant 3-spanner.
//! let ft = FtGreedy::new(&g, 3).faults(1).run();
//! assert!(ft.spanner().edge_count() < g.edge_count());
//!
//! // Knock out any single vertex: the survivor still 3-spans.
//! let audit = verify_ft_exhaustive(&g, ft.spanner(), 1, FaultModel::Vertex);
//! assert!(audit.satisfied());
//!
//! // Serve it: freeze the construction into an immutable artifact and
//! // open an epoch session under one failure view.
//! let server = EpochServer::new(std::sync::Arc::new(ft.freeze(&g)));
//! let mut session = server.epoch(&FaultSet::vertices([NodeId::new(3)]));
//! let answers = session.route_batch(&[
//!     (NodeId::new(0), NodeId::new(7)),
//!     (NodeId::new(1), NodeId::new(9)),
//! ]);
//! assert!(answers.iter().all(|a| a.is_ok()));
//! ```
//!
//! # Concurrent multi-tenant serving
//!
//! One [`EpochServer`](core::EpochServer) serves any number of tenants
//! from one frozen artifact: each [`epoch`](core::EpochServer::epoch)
//! call opens an independent, `Send` [`EpochHandle`](core::EpochHandle)
//! session; tenants asking for the same fault set share one interned
//! fault view. Answers are bit-identical to the sequential reference no
//! matter how sessions interleave:
//!
//! ```
//! use vft_spanner::prelude::*;
//! use std::sync::Arc;
//!
//! let g = generators::complete(10);
//! let ft = FtGreedy::new(&g, 3).faults(1).run();
//! let server = EpochServer::new(Arc::new(ft.freeze(&g)));
//!
//! // Two tenants, two different fault views, served concurrently.
//! let mut tenant_a = server.epoch(&FaultSet::vertices([NodeId::new(3)]));
//! let mut tenant_b = server.epoch(&FaultSet::vertices([NodeId::new(7)]));
//! let (a, b) = std::thread::scope(|scope| {
//!     let a = scope.spawn(|| tenant_a.route_batch(&[(NodeId::new(0), NodeId::new(7))]));
//!     let b = scope.spawn(|| tenant_b.route_batch(&[(NodeId::new(0), NodeId::new(3))]));
//!     (a.join().unwrap(), b.join().unwrap())
//! });
//! assert!(a[0].is_ok() && b[0].is_ok());
//!
//! // O(Δ) epoch transitions: derive tenant A's next view by listing
//! // only what changed, instead of re-applying the whole fault set.
//! let mut delta = EpochDelta::new();
//! delta.restore_vertex(NodeId::new(3)).fault_vertex(NodeId::new(4));
//! let mut next = server.epoch(&FaultSet::vertices([NodeId::new(3)])).step(&delta);
//! assert!(next.route(NodeId::new(0), NodeId::new(3)).is_ok());
//! assert_eq!(server.stats().delta_component_ops, 2);
//! ```
//!
//! # Build once, serve many
//!
//! Construction is the expensive half (every kept edge pays an exact
//! fault-oracle decision); serving is cheap. The frozen artifact
//! therefore persists: [`FrozenSpanner::encode`](core::FrozenSpanner::encode)
//! writes a versioned binary document (spec: `docs/ARTIFACT_FORMAT.md`)
//! and [`FrozenSpanner::decode`](core::FrozenSpanner::decode) loads it
//! back in any process — a serving replica never re-runs FT-greedy, and
//! the loaded artifact answers bit-identically to the one it was encoded
//! from:
//!
//! ```
//! use vft_spanner::prelude::*;
//! use std::sync::Arc;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::erdos_renyi(24, 0.35, &mut rng);
//! let original = Arc::new(FtGreedy::new(&g, 3).faults(1).run().freeze(&g));
//!
//! // Encode → (ship the bytes to a replica) → decode.
//! let bytes = original.encode();
//! let loaded = Arc::new(FrozenSpanner::decode(&bytes)?);
//! assert_eq!(loaded.encode(), bytes); // canonical roundtrip
//!
//! // The replica serves the same epochs with bit-identical answers.
//! let outage = FaultSet::vertices([NodeId::new(5)]);
//! let pairs = [(NodeId::new(0), NodeId::new(9)), (NodeId::new(2), NodeId::new(17))];
//! let mut here = EpochServer::new(original).epoch(&outage);
//! let mut there = EpochServer::new(loaded).epoch(&outage);
//! assert_eq!(here.route_batch(&pairs), there.route_batch(&pairs));
//!
//! // Zero-copy replicas: re-lay the artifact out as v2 once, then
//! // open it **in place** — the adjacency serves straight out of the
//! // (mapped or aligned) buffer, nothing is decoded up front.
//! let v2 = FrozenSpanner::decode(&bytes)?.to_v2().encode();
//! let mapped = FrozenSpanner::open(SharedBytes::copy_aligned(&v2))?;
//! let mut zero_copy = EpochServer::from_mapped(mapped).epoch(&outage);
//! assert_eq!(zero_copy.route_batch(&pairs), here.route_batch(&pairs));
//!
//! // Hostile bytes are rejected with a typed error, never a panic.
//! assert!(FrozenSpanner::decode(&bytes[..bytes.len() / 2]).is_err());
//! # Ok::<(), vft_spanner::core::ArtifactError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spanner_core as core;
pub use spanner_extremal as extremal;
pub use spanner_faults as faults;
pub use spanner_graph as graph;

/// The most common imports, bundled.
pub mod prelude {
    pub use rand::{rngs::StdRng, Rng, SeedableRng};
    pub use spanner_core::baselines::{dk_spanner, union_eft_spanner, DkParams};
    pub use spanner_core::metrics::{spanner_metrics, SpannerMetrics};
    pub use spanner_core::report::ConstructionReport;
    pub use spanner_core::report::ScenarioReport;
    pub use spanner_core::routing::{stretch_against, Route, RouteError};
    pub use spanner_core::serve::route_one;
    pub use spanner_core::simulation::{
        run_scenario, run_scripted_scenario, simulate, AdversarialWitnessReplay, BurstCascade,
        ContractEvent, CorrelatedRegional, FailureProcess, IndependentBernoulli, ScenarioConfig,
        ScenarioOutcome, SimulationConfig, SimulationOutcome, Trace,
    };
    pub use spanner_core::verify::{
        certify_vft_exact, verify_ft_adaptive, verify_ft_adversarial, verify_ft_exhaustive,
        verify_ft_sampled, verify_spanner, verify_under_faults,
    };
    pub use spanner_core::{
        greedy_spanner, peel, verify_blocking_set, BatchCoalescer, BlockingSet, EpochDelta,
        EpochHandle, EpochServer, EpochView, FrozenSpanner, FtGreedy, FtSpanner, MappedSpanner,
        OracleKind, ServerStats, Spanner, Ticket,
    };
    pub use spanner_faults::{
        BranchingOracle, ExhaustiveOracle, FaultModel, FaultOracle, FaultSet,
        GreedyHeuristicOracle, HittingSetOracle, OracleQuery,
    };
    pub use spanner_graph::{
        bfs, connectivity, dijkstra, generators, girth, mst, subgraph, transform, Dist, EdgeId,
        FaultMask, Graph, NodeId, SharedBytes, Weight,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_paths_resolve() {
        let g = crate::graph::generators::complete(5);
        let s = crate::core::greedy_spanner(&g, 3);
        assert!(s.edge_count() <= g.edge_count());
        let _curve = crate::extremal::moore::moore_bound(10.0, 3);
    }
}
