//! Offline shim for the subset of [`proptest` 1.x](https://docs.rs/proptest)
//! used by the `vft-spanner` workspace.
//!
//! Implements the same module paths and macro surface (`proptest!`,
//! `prop_assert*!`, strategies with `prop_map`/`prop_flat_map`/
//! `prop_filter`, `any::<T>()`, `collection::vec`, `ProptestConfig`,
//! `TestCaseError`) with matching semantics, so it can be swapped for the
//! real crate without source changes.
//!
//! Differences from upstream: no shrinking — a failing case reports its
//! case index, per-case seed, and assertion message instead of a
//! minimized input. Generation is deterministic per (test name, case
//! index), so failures reproduce on the next run.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

mod macros;

/// The `proptest::prelude`, mirroring upstream's re-exports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
