//! Collection strategies (`proptest::collection` equivalent).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.rng().gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length comes from `size`, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
