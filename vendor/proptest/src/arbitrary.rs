//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy over the whole domain of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.rng().gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
