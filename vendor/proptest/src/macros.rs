//! The `proptest!` family of macros.

/// Defines property tests, mirroring upstream `proptest!`.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_proptest(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __outcome
                },
            );
        }
    )*};
}

/// Asserts a condition inside a property test; on failure the current
/// case fails with the condition (or formatted message) as the reason.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal (`==`) inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal (`!=`) inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`\n {}",
            __l,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
