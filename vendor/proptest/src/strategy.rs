//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Value`.
///
/// Mirrors `proptest::strategy::Strategy`, minus shrinking: a strategy
/// here is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Returns a strategy that feeds generated values into a
    /// strategy-producing function — for dependent generation.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Returns a strategy that retries generation until `pred` accepts
    /// the value. `whence` labels the filter in the give-up panic.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases this strategy (`proptest`'s `boxed()`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 values in a row",
            self.whence
        );
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
