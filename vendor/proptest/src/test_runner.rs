//! Config, error type, RNG, and the case-running loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected (assumed-away) cases tolerated before
    /// the test aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A default config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case violated an assertion — the property is false.
    Fail(String),
    /// The case was rejected (e.g. by `prop_assume!`) — try another.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected case with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to strategies during generation.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator for one test case.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying `rand` generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// FNV-1a, used to derive a stable per-test base seed from the test name.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` for `config.cases` deterministic cases. Called by the
/// `proptest!` macro expansion; not part of the upstream API surface.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(test_name);
    let mut rejects = 0u32;
    let mut case = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!("{test_name}: too many rejected cases ({rejects}); last: {reason}");
                }
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!("{test_name}: case #{case} (seed {seed:#018x}) failed: {reason}");
            }
        }
        case += 1;
    }
}
