//! Minimal read-only `mmap(2)` wrapper — the page-cache-backed byte
//! provider for zero-copy artifact serving.
//!
//! This is a vendored, dependency-free crate (no `libc`): the two
//! syscalls it needs are declared directly as C FFI. It deliberately
//! implements only the subset the `vft-spanner` workspace uses — map a
//! whole file read-only and expose it as `&[u8]`:
//!
//! * **Read-only, private.** Mappings are `PROT_READ` + `MAP_PRIVATE`;
//!   there is no way to write through a [`Mmap`], which is what makes
//!   sharing it across threads sound.
//! * **Page-aligned.** The kernel returns page-aligned addresses, so a
//!   mapping always satisfies the 8-byte base alignment the in-place
//!   artifact readers require.
//! * **Portable fallback is the caller's job.** [`Mmap::supported`]
//!   reports whether this platform has the syscall; when it does not
//!   (or a map attempt fails), callers fall back to reading the file
//!   into an aligned heap buffer. Runtime selection, not compile-time.
//!
//! The truncation caveat of file-backed mappings applies: if another
//! process truncates the file while it is mapped, touching the vanished
//! pages faults. The artifact pipeline treats artifacts as immutable
//! once written (see `docs/ARTIFACT_FORMAT.md`), and every consumer
//! checksums the full byte range before trusting it.
//!
//! # Examples
//!
//! ```no_run
//! let file = std::fs::File::open("spanner.vft")?;
//! let map = mmapio::Mmap::map_file(&file)?;
//! let bytes: &[u8] = map.as_slice();
//! # let _ = bytes;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    //! Direct FFI to `mmap(2)`/`munmap(2)` — the only unsafe code in the
    //! workspace, confined to this module.

    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An owned, non-empty, read-only private mapping.
    pub(crate) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable through
    // this handle for its whole lifetime — and the pointer is owned
    // exclusively by this struct, so sharing shared references across
    // threads is sound.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the first `len` bytes of `file` read-only. `len` must be
        /// nonzero (POSIX rejects zero-length mappings).
        pub(crate) fn map(file: &File, len: usize) -> io::Result<Mapping> {
            debug_assert!(len > 0, "zero-length mappings are the caller's case");
            // SAFETY: null hint, a validated nonzero length, constant
            // read-only flags, and a file descriptor that outlives the
            // call; the result is checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        /// The mapped bytes.
        pub(crate) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live mapping of exactly `len` readable
            // bytes until `drop`, and nothing writes through it.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact range this struct mapped;
            // after drop no slice borrowed from it can exist.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

enum Inner {
    #[cfg(unix)]
    Mapped(sys::Mapping),
    /// Zero-length files (POSIX rejects zero-length mappings) — and the
    /// only inhabitant on platforms without `mmap(2)`.
    Empty,
}

/// A read-only memory mapping of a whole file.
///
/// Dereferences to `&[u8]`; unmapped on drop. See the module docs for
/// the safety and alignment contract.
pub struct Mmap {
    inner: Inner,
}

impl Mmap {
    /// Whether this platform supports `mmap(2)`. When `false`, callers
    /// should read the file into an aligned buffer instead.
    pub const fn supported() -> bool {
        cfg!(unix)
    }

    /// Maps `file` in its entirety, read-only.
    ///
    /// # Errors
    ///
    /// Propagates metadata and `mmap(2)` failures; on platforms without
    /// the syscall, returns [`io::ErrorKind::Unsupported`] for nonempty
    /// files.
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file exceeds the address space",
            ));
        }
        if len == 0 {
            return Ok(Mmap {
                inner: Inner::Empty,
            });
        }
        #[cfg(unix)]
        {
            Ok(Mmap {
                inner: Inner::Mapped(sys::Mapping::map(file, len as usize)?),
            })
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "mmap(2) is unavailable on this platform",
            ))
        }
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(m) => m.as_slice(),
            Inner::Empty => &[],
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!("mmapio-test-{}-{name}", std::process::id()));
        let mut f = File::create(&path).expect("create temp file");
        f.write_all(contents).expect("write temp file");
        drop(f);
        (path.clone(), File::open(&path).expect("reopen temp file"))
    }

    #[test]
    fn maps_file_contents_exactly() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let (path, file) = temp_file("contents", &data);
        let map = Mmap::map_file(&file).expect("map");
        assert_eq!(map.as_slice(), &data[..]);
        assert_eq!(map.len(), data.len());
        assert!(!map.is_empty());
        drop(map);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mapping_base_is_well_aligned() {
        let (path, file) = temp_file("align", &[7u8; 64]);
        let map = Mmap::map_file(&file).expect("map");
        // Page alignment implies (much more than) the 8-byte base
        // alignment the in-place artifact readers need.
        assert_eq!(map.as_slice().as_ptr() as usize % 8, 0);
        drop(map);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let (path, file) = temp_file("empty", &[]);
        let map = Mmap::map_file(&file).expect("map empty");
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), &[] as &[u8]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn supported_matches_platform() {
        assert_eq!(Mmap::supported(), cfg!(unix));
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        fn check<T: Send + Sync>() {}
        check::<Mmap>();
        let (path, file) = temp_file("threads", b"shared across threads");
        let map = std::sync::Arc::new(Mmap::map_file(&file).expect("map"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.as_slice().to_vec())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), b"shared across threads");
        }
        drop(map);
        std::fs::remove_file(path).ok();
    }
}
