//! Uniform range sampling (`rand`'s `SampleRange` equivalent).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire's
/// multiply-shift with a rejection pass for exactness.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling over the largest multiple of n below 2^64.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}
