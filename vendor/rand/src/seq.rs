//! Slice sampling extensions (`rand::seq` equivalent).

use crate::{RngCore, SampleRange};

/// Random operations on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles a uniform `amount`-subset into the front of the slice and
    /// returns `(sampled, rest)`. (Upstream gathers the sample at the
    /// *end* of the slice; callers in this workspace index the front, so
    /// the shim defines the sample to live there.)
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = (i..self.len()).sample_single(rng);
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}
