//! Offline shim for the subset of [`rand` 0.8](https://docs.rs/rand/0.8)
//! used by the `vft-spanner` workspace.
//!
//! Module paths, trait names, and semantics match upstream so the shim can
//! be swapped for the real crate without source changes. The one visible
//! difference: [`rngs::StdRng`] is xoshiro256++ seeded via SplitMix64
//! rather than ChaCha12, so seeded streams differ from upstream (nothing
//! in the workspace depends on exact stream values).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

mod range;

pub use range::SampleRange;

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Accepts half-open (`lo..hi`) and inclusive (`lo..=hi`) ranges over
    /// the integer types and `f64`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 random bits → uniform in [0, 1), exactly representable.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be built from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 (the
    /// same expansion upstream `rand` documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public domain, Vigna 2015).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
