//! Offline shim for the subset of [`criterion` 0.5](https://docs.rs/criterion)
//! used by the `vft-spanner` workspace.
//!
//! Measures wall-clock time with a fixed warm-up and a per-benchmark
//! sample loop and prints a plain-text report — no plots, HTML, or
//! statistical analysis. Supports the CLI contract cargo relies on:
//! a filter argument, `--bench` (ignored), and `--test` (exit quickly so
//! `cargo test` stays fast with `harness = false` bench targets).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Harness flags cargo (or users) pass that we accept and
                // ignore: discovery, output control, profiles.
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.run_one(&name, 100, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            return;
        }
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `{group}/{id}`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&name, self.sample_size, f);
        self
    }

    /// Benchmarks `f(input)` under `{group}/{id}`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion
            .run_one(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (Analysis happens eagerly; this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// A benchmark id combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id displayed as `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id displayed as just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id fragment — `&str`, `String`, or
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The id fragment appended to the group name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly: one untimed warm-up, then `sample_size`
    /// timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        println!(
            "{name:<60} mean {:>12?}  median {:>12?}  samples {}",
            mean,
            median,
            sorted.len()
        );
    }
}

/// Collects benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}
