//! Workspace smoke test: the facade quickstart, end to end.
//!
//! Mirrors the `src/lib.rs` crate-level example — build an FT spanner of
//! a seeded Erdős–Rényi graph through the prelude, certify it
//! exhaustively against every single-vertex fault, then freeze it and
//! serve concurrent epoch sessions through the `EpochServer` — so the
//! public entry path can't rot even if the doctest is skipped.

use std::sync::Arc;
use vft_spanner::graph::{DijkstraEngine, PathScratch};
use vft_spanner::prelude::*;

#[test]
fn facade_quickstart_end_to_end() {
    // Fixed seed: the graph, the spanner, and the audit are deterministic.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::erdos_renyi(40, 0.3, &mut rng);
    assert!(g.edge_count() > 0, "seeded G(40, 0.3) must have edges");

    let ft = FtGreedy::new(&g, 3).faults(1).run();
    assert!(
        ft.spanner().edge_count() <= g.edge_count(),
        "a spanner never has more edges than its input"
    );

    // The paper's guarantee, checked exhaustively: for EVERY fault set F
    // with |F| <= 1, H \ F is a 3-spanner of G \ F.
    let audit = verify_ft_exhaustive(&g, ft.spanner(), 1, FaultModel::Vertex);
    assert!(
        audit.satisfied(),
        "FT guarantee violated: {}/{} fault sets failed",
        audit.violations,
        audit.trials
    );

    // Freeze and serve: one immutable artifact, one shared server, two
    // tenant sessions under the same fault view (interned once), each
    // answered identically to the primitive one-pair-at-a-time
    // reference (`route_one`).
    let artifact = Arc::new(ft.freeze(&g));
    let server = EpochServer::new(Arc::clone(&artifact)).with_threads(2);
    let failures = FaultSet::vertices([NodeId::new(3)]);
    let pairs: Vec<(NodeId, NodeId)> = (0..g.node_count())
        .filter(|v| *v != 3)
        .map(|v| (NodeId::new(v), NodeId::new((v + 7) % g.node_count())))
        .filter(|(u, v)| u != v && v.index() != 3)
        .collect();
    let mut tenant_a = server.epoch(&failures);
    let mut tenant_b = server.epoch(&failures);
    assert!(
        Arc::ptr_eq(tenant_a.view(), tenant_b.view()),
        "tenants under one fault set share one interned view"
    );
    let batched = tenant_a.route_batch(&pairs);
    let pooled = tenant_b.par_route_batch(&pairs);
    let mut mask = FaultMask::with_capacity(artifact.node_count(), artifact.edge_count());
    artifact.apply_faults(&failures, &mut mask);
    let (mut engine, mut scratch) = (DijkstraEngine::new(), PathScratch::new());
    let one_by_one: Vec<_> = pairs
        .iter()
        .map(|&(u, v)| route_one(&artifact, &mut engine, &mut scratch, &mask, u, v))
        .collect();
    assert_eq!(batched, one_by_one, "epoch batch must match the reference");
    assert_eq!(pooled, one_by_one, "pooled batch must match the reference");
    assert!(
        batched.iter().all(|a| a.is_ok()),
        "a 1-FT spanner serves every live pair under one failure"
    );
}

#[test]
fn facade_quickstart_is_deterministic() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::erdos_renyi(40, 0.3, &mut rng);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        (g.edge_count(), ft.spanner().edge_count())
    };
    assert_eq!(build(), build(), "same seed must give the same spanner");
}
