//! Workspace smoke test: the facade quickstart, end to end.
//!
//! Mirrors the `src/lib.rs` crate-level example — build an FT spanner of
//! a seeded Erdős–Rényi graph through the prelude, then certify it
//! exhaustively against every single-vertex fault — so the public entry
//! path can't rot even if the doctest is skipped.

use vft_spanner::prelude::*;

#[test]
fn facade_quickstart_end_to_end() {
    // Fixed seed: the graph, the spanner, and the audit are deterministic.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::erdos_renyi(40, 0.3, &mut rng);
    assert!(g.edge_count() > 0, "seeded G(40, 0.3) must have edges");

    let ft = FtGreedy::new(&g, 3).faults(1).run();
    assert!(
        ft.spanner().edge_count() <= g.edge_count(),
        "a spanner never has more edges than its input"
    );

    // The paper's guarantee, checked exhaustively: for EVERY fault set F
    // with |F| <= 1, H \ F is a 3-spanner of G \ F.
    let audit = verify_ft_exhaustive(&g, ft.spanner(), 1, FaultModel::Vertex);
    assert!(
        audit.satisfied(),
        "FT guarantee violated: {}/{} fault sets failed",
        audit.violations,
        audit.trials
    );
}

#[test]
fn facade_quickstart_is_deterministic() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::erdos_renyi(40, 0.3, &mut rng);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        (g.edge_count(), ft.spanner().edge_count())
    };
    assert_eq!(build(), build(), "same seed must give the same spanner");
}
