//! Every experiment in the harness registry must run clean at smoke scale:
//! produce tables, produce notes, and flag no violations. This is the
//! regression net under `repro all`.

use spanner_harness::experiments::{registry, ExperimentContext, Scale};

#[test]
fn all_experiments_run_clean_at_smoke_scale() {
    let ctx = ExperimentContext::new(Scale::Smoke);
    for (id, runner) in registry() {
        let out = runner(&ctx);
        assert_eq!(out.id, id);
        assert!(!out.tables.is_empty(), "{id}: no tables");
        for table in &out.tables {
            assert!(table.row_count() > 0, "{id}: empty table");
        }
        for note in &out.notes {
            assert!(
                !note.contains("VIOLATION"),
                "{id}: flagged a violation: {note}"
            );
        }
    }
}

#[test]
fn experiment_csv_output_round_trips() {
    let ctx = ExperimentContext::new(Scale::Smoke);
    let (_, runner) = registry().into_iter().next().unwrap();
    let out = runner(&ctx);
    let dir = std::env::temp_dir().join("vft_spanner_csv_test");
    let path = dir.join("table.csv");
    out.tables[0].write_csv(&path).unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    assert!(content.lines().count() >= out.tables[0].row_count() + 2);
    let _ = std::fs::remove_dir_all(&dir);
}
