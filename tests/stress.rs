//! Larger stress tests, ignored by default.
//!
//! Run with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! These push the construction/verification machinery to sizes the normal
//! suite avoids (to keep `cargo test` fast) and assert the same invariants.

use vft_spanner::prelude::*;

#[test]
#[ignore = "multi-second stress test; run with --ignored --release"]
fn large_vft_construction_and_audit() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = generators::erdos_renyi(300, 0.08, &mut rng);
    let f = 3usize;
    let ft = FtGreedy::new(&g, 3).faults(f).run();
    assert!(ft.spanner().edge_count() < g.edge_count());
    let audit = verify_ft_sampled(&g, ft.spanner(), f, FaultModel::Vertex, 100, &mut rng);
    assert!(audit.satisfied(), "{:?}", audit.first_violation);
    let adv = verify_ft_adversarial(&g, &ft);
    assert!(adv.satisfied());
}

#[test]
#[ignore = "multi-second stress test; run with --ignored --release"]
fn large_blocking_and_peeling_pipeline() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::erdos_renyi(250, 0.1, &mut rng);
    let f = 2usize;
    let ft = FtGreedy::new(&g, 3).faults(f).run();
    let b = BlockingSet::from_witnesses(&ft);
    assert!(b.len() <= f * ft.spanner().edge_count());
    let report = verify_blocking_set(ft.spanner().graph(), &b, 4, 5_000_000);
    assert!(report.is_valid(), "{} unblocked", report.unblocked.len());
    for seed in 0..20 {
        let mut peel_rng = StdRng::seed_from_u64(seed);
        let out = peel(ft.spanner().graph(), &b, f, 4, &mut peel_rng);
        assert!(out.girth_ok);
    }
}

#[test]
#[ignore = "multi-second stress test; run with --ignored --release"]
fn large_blowup_retention() {
    use vft_spanner::extremal::{lower_bound::biclique_blowup, projective};
    let base = projective::incidence_graph(5).expect("5 is prime"); // 62 nodes, 186 edges
    let blow = biclique_blowup(&base, 3); // 186 * 9 = 1674 edges
    let ft = FtGreedy::new(blow.graph(), 3).faults(4).run();
    assert_eq!(
        ft.spanner().edge_count(),
        blow.graph().edge_count(),
        "lower-bound family must be fully retained"
    );
}

#[test]
#[ignore = "multi-second stress test; run with --ignored --release"]
fn weighted_geometric_eft_with_all_baselines() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::random_geometric(250, 0.15, &mut rng);
    let f = 2usize;
    let greedy = FtGreedy::new(&g, 3).faults(f).model(FaultModel::Edge).run();
    let union = union_eft_spanner(&g, 3, f);
    assert!(greedy.spanner().edge_count() <= union.edge_count());
    for s in [&greedy.into_spanner(), &union] {
        let audit = verify_ft_sampled(&g, s, f, FaultModel::Edge, 60, &mut rng);
        assert!(audit.satisfied());
    }
}

#[test]
#[ignore = "multi-second stress test; run with --ignored --release"]
fn deep_fault_budget_oracle_consistency() {
    // f = 6 on a moderate graph: branching with and without the cut
    // shortcut must produce identical spanners.
    let mut rng = StdRng::seed_from_u64(4);
    let g = generators::erdos_renyi(60, 0.25, &mut rng);
    let with_cut = FtGreedy::new(&g, 3).faults(6).run();
    let without_cut = FtGreedy::new(&g, 3)
        .faults(6)
        .oracle(OracleKind::BranchingWith(spanner_faults::BranchingConfig {
            use_packing: true,
            use_memo: true,
            use_cut_shortcut: false,
        }))
        .run();
    assert_eq!(
        with_cut.spanner().parent_edge_ids(),
        without_cut.spanner().parent_edge_ids()
    );
}
