//! Determinism: fixed seeds must reproduce identical artifacts across the
//! whole stack — the property EXPERIMENTS.md's numbers depend on.

use vft_spanner::prelude::*;

fn spanner_fingerprint(s: &Spanner) -> Vec<u32> {
    s.parent_edge_ids().iter().map(|e| e.raw()).collect()
}

#[test]
fn generators_are_seed_deterministic() {
    for seed in [0u64, 1, 99] {
        let a = generators::erdos_renyi(80, 0.1, &mut StdRng::seed_from_u64(seed));
        let b = generators::erdos_renyi(80, 0.1, &mut StdRng::seed_from_u64(seed));
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().map(|(_, e)| (e.u(), e.v())).collect();
        let eb: Vec<_> = b.edges().map(|(_, e)| (e.u(), e.v())).collect();
        assert_eq!(ea, eb, "seed {seed}");
    }
}

#[test]
fn ft_greedy_is_input_deterministic() {
    let g = generators::erdos_renyi(40, 0.2, &mut StdRng::seed_from_u64(5));
    let a = FtGreedy::new(&g, 3).faults(2).run();
    let b = FtGreedy::new(&g, 3).faults(2).run();
    assert_eq!(
        spanner_fingerprint(a.spanner()),
        spanner_fingerprint(b.spanner())
    );
    assert_eq!(a.witnesses(), b.witnesses());
}

#[test]
fn dk_and_peeling_are_seed_deterministic() {
    let g = generators::erdos_renyi(40, 0.2, &mut StdRng::seed_from_u64(5));
    let p = DkParams::heuristic(40, 1, 2.0);
    let a = dk_spanner(&g, 3, p, &mut StdRng::seed_from_u64(1));
    let b = dk_spanner(&g, 3, p, &mut StdRng::seed_from_u64(1));
    assert_eq!(spanner_fingerprint(&a), spanner_fingerprint(&b));

    let ft = FtGreedy::new(&g, 3).faults(2).run();
    let blocking = BlockingSet::from_witnesses(&ft);
    let o1 = peel(
        ft.spanner().graph(),
        &blocking,
        2,
        4,
        &mut StdRng::seed_from_u64(3),
    );
    let o2 = peel(
        ft.spanner().graph(),
        &blocking,
        2,
        4,
        &mut StdRng::seed_from_u64(3),
    );
    assert_eq!(o1.final_edges(), o2.final_edges());
    assert_eq!(o1.sampled_nodes, o2.sampled_nodes);
}

#[test]
fn high_girth_generator_is_seed_deterministic() {
    use vft_spanner::extremal::high_girth::high_girth_graph;
    let a = high_girth_graph(60, 5, &mut StdRng::seed_from_u64(8));
    let b = high_girth_graph(60, 5, &mut StdRng::seed_from_u64(8));
    assert_eq!(a.edge_count(), b.edge_count());
}
