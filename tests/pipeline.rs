//! Cross-crate integration: the full Theorem 1 pipeline through the facade.
//!
//! graph generation → FT-greedy (Algorithm 1) → witness blocking set
//! (Lemma 3) → peeling (Lemma 4) → girth witness, plus the lower-bound
//! family and baselines — every crate touching every other one the way the
//! paper's proof does.

use vft_spanner::prelude::*;

#[test]
fn theorem1_pipeline_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2019);
    let g = generators::erdos_renyi(50, 0.25, &mut rng);
    let stretch = 3u64;
    let f = 2usize;

    // Algorithm 1.
    let ft = FtGreedy::new(&g, stretch).faults(f).run();
    let h = ft.spanner();
    assert!(h.edge_count() < g.edge_count(), "must sparsify this input");

    // The FT property, audited by sampling.
    let audit = verify_ft_sampled(&g, h, f, FaultModel::Vertex, 40, &mut rng);
    assert!(audit.satisfied(), "{:?}", audit.first_violation);

    // Lemma 3.
    let b = BlockingSet::from_witnesses(&ft);
    assert!(b.len() <= f * h.edge_count());
    let report = verify_blocking_set(h.graph(), &b, (stretch + 1) as usize, 1_000_000);
    assert!(report.is_valid());

    // Lemma 4, many samples: girth always holds.
    for seed in 0..10 {
        let mut peel_rng = StdRng::seed_from_u64(seed);
        let outcome = peel(h.graph(), &b, f, (stretch + 1) as usize, &mut peel_rng);
        assert!(outcome.girth_ok, "seed {seed}");
        assert_eq!(
            outcome.sampled_nodes,
            h.graph().node_count().div_ceil(2 * f)
        );
    }
}

#[test]
fn lower_bound_family_is_incompressible_end_to_end() {
    use vft_spanner::extremal::lower_bound::{biclique_blowup, max_copies_for_fault_budget};

    let base = vft_spanner::extremal::projective::heawood();
    let f = 2usize;
    let t = max_copies_for_fault_budget(f);
    let blow = biclique_blowup(&base, t);
    let g = blow.graph();

    // Greedy keeps everything.
    let ft = FtGreedy::new(g, 3).faults(f).run();
    assert_eq!(ft.spanner().edge_count(), g.edge_count());

    // And indeed each edge is critical: dropping any one edge breaks the
    // FT property under its critical fault set.
    for probe in [0usize, 7, 41] {
        let e = EdgeId::new(probe % g.edge_count());
        let kept: Vec<EdgeId> = g.edge_ids().filter(|id| *id != e).collect();
        let without = Spanner::from_parent_edges(g, kept, 3);
        let faults = FaultSet::vertices(blow.critical_fault_set(e));
        assert!(faults.len() <= f);
        let report = verify_under_faults(g, &without, &faults);
        assert!(
            !report.satisfied,
            "edge {e} should be critical under {faults}"
        );
    }
}

#[test]
fn baselines_compose_with_verification() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::erdos_renyi(40, 0.25, &mut rng);
    let f = 1usize;

    let dk = dk_spanner(&g, 3, DkParams::provable(40, f), &mut rng);
    let audit = verify_ft_exhaustive(&g, &dk, f, FaultModel::Vertex);
    assert!(audit.satisfied());

    let union = union_eft_spanner(&g, 3, f);
    let audit = verify_ft_exhaustive(&g, &union, f, FaultModel::Edge);
    assert!(audit.satisfied());

    // Greedy is the smallest of the three.
    let greedy = FtGreedy::new(&g, 3).faults(f).run();
    assert!(greedy.spanner().edge_count() <= dk.edge_count());
    let greedy_eft = FtGreedy::new(&g, 3).faults(f).model(FaultModel::Edge).run();
    assert!(greedy_eft.spanner().edge_count() <= union.edge_count());
}

#[test]
fn weighted_pipeline_with_geometric_graph() {
    let mut rng = StdRng::seed_from_u64(99);
    let g = generators::random_geometric(60, 0.35, &mut rng);
    let f = 1usize;
    let ft = FtGreedy::new(&g, 3).faults(f).run();
    // Weighted instance: verify under every single-vertex fault.
    let audit = verify_ft_exhaustive(&g, ft.spanner(), f, FaultModel::Vertex);
    assert!(audit.satisfied(), "{:?}", audit.first_violation);
    // Adversarial replay too.
    let adv = verify_ft_adversarial(&g, &ft);
    assert!(adv.satisfied());
}

#[test]
fn oracle_kinds_agree_through_the_facade() {
    let g = generators::grid(3, 4);
    let mut sizes = std::collections::HashSet::new();
    for kind in [
        OracleKind::Branching,
        OracleKind::Exhaustive,
        OracleKind::HittingSet,
    ] {
        let ft = FtGreedy::new(&g, 3).faults(1).oracle(kind).run();
        sizes.insert(ft.spanner().edge_count());
    }
    assert_eq!(sizes.len(), 1, "oracle implementations disagree: {sizes:?}");
}

#[test]
fn blowup_connectivity_matches_theory() {
    // Vertex connectivity multiplies under the biclique blow-up:
    // kappa(blowup(G, t)) = t * kappa(G). For C8 (kappa = 2) with t = 2,
    // the result must be exactly 4-connected — the structural fact behind
    // per-edge criticality with 2(t-1) faults.
    use vft_spanner::extremal::lower_bound::biclique_blowup;
    let blow = biclique_blowup(&generators::cycle(8), 2);
    let g = blow.graph();
    let mask = FaultMask::for_graph(g);
    assert_eq!(connectivity::vertex_connectivity(g, &mask), 4);
    assert_eq!(connectivity::edge_connectivity(g, &mask), 4);
}

#[test]
fn spanner_io_round_trip_preserves_verification() {
    // Serialize a constructed spanner's graph, read it back, and confirm
    // the stretch verification still passes — I/O is faithful.
    use vft_spanner::graph::io;
    let mut rng = StdRng::seed_from_u64(31);
    let g = generators::erdos_renyi(30, 0.3, &mut rng);
    let ft = FtGreedy::new(&g, 3).faults(1).run();
    let text = io::to_edge_list(ft.spanner().graph());
    let back = io::from_edge_list(&text).expect("parse back");
    assert_eq!(back.edge_count(), ft.spanner().edge_count());
    // Rebuild a spanner object over the same parent via matching edges.
    let kept: Vec<EdgeId> = ft.spanner().parent_edge_ids().to_vec();
    let rebuilt = Spanner::from_parent_edges(&g, kept, 3);
    assert!(verify_spanner(&g, &rebuilt).satisfied);
}

#[test]
fn metrics_track_fault_budget() {
    let mut rng = StdRng::seed_from_u64(77);
    let g = generators::random_geometric(50, 0.4, &mut rng);
    let mut last = 0.0f64;
    for f in 0..3 {
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let m = spanner_metrics(&g, ft.spanner());
        assert!(m.lightness >= last, "lightness must not drop as f grows");
        assert!(m.retention <= 1.0);
        last = m.lightness;
    }
}

#[test]
fn heuristic_mode_is_usable_but_flagged() {
    let mut rng = StdRng::seed_from_u64(13);
    let g = generators::erdos_renyi(30, 0.3, &mut rng);
    assert!(!OracleKind::Heuristic.is_exact());
    assert!(OracleKind::Branching.is_exact());
    let ft = FtGreedy::new(&g, 3)
        .faults(1)
        .oracle(OracleKind::Heuristic)
        .run();
    // Whatever it kept is at least a plain spanner (f=0 guarantees hold:
    // the final H distance check is genuine for kept edges, and dropped
    // edges had SOME certified path at drop time; the plain property can
    // still be verified directly).
    assert!(verify_spanner(&g, ft.spanner()).satisfied);
}

#[test]
fn greedy_outputs_have_low_degeneracy() {
    // The girth > k+1 structure of greedy outputs shows up as degeneracy:
    // K40's 3-spanner is C4-free, so degeneracy O(sqrt(n)) — far below
    // the input's n-1.
    use vft_spanner::graph::degeneracy::degeneracy_ordering;
    let g = generators::complete(40);
    let s = greedy_spanner(&g, 3);
    let mask = FaultMask::for_graph(s.graph());
    let d = degeneracy_ordering(s.graph(), &mask);
    assert!(
        d.degeneracy <= 8,
        "3-spanner of K40 has degeneracy {} (expected O(sqrt n))",
        d.degeneracy
    );
    // Fault tolerance raises it only mildly (Corollary 2: ~sqrt(f) factor).
    let ft = FtGreedy::new(&g, 3).faults(2).run();
    let mask = FaultMask::for_graph(ft.spanner().graph());
    let dft = degeneracy_ordering(ft.spanner().graph(), &mask);
    assert!(dft.degeneracy >= d.degeneracy);
    assert!(
        dft.degeneracy <= 4 * d.degeneracy,
        "2-VFT degeneracy {} vs plain {}",
        dft.degeneracy,
        d.degeneracy
    );
}

#[test]
fn adaptive_audit_through_the_facade() {
    use vft_spanner::core::verify::verify_ft_adaptive;
    let mut rng = StdRng::seed_from_u64(17);
    let g = generators::erdos_renyi(35, 0.3, &mut rng);
    let f = 2usize;
    let ft = FtGreedy::new(&g, 3).faults(f).model(FaultModel::Edge).run();
    // Edge model has no exact certifier; the adaptive audit is the
    // strongest check available and must come back clean.
    let audit = verify_ft_adaptive(&g, ft.spanner(), f, FaultModel::Edge, 5, &mut rng);
    assert!(audit.satisfied(), "{:?}", audit.first_violation);
    assert!(audit.trials > 5);
}
